package gap

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"argan/internal/ace"
	"argan/internal/mem"
	"argan/internal/obs"
)

// Localized recovery (LiveConfig.Recovery: "local").
//
// The global strategy in livefault.go stops the whole cluster at a
// consistent barrier for every checkpoint and rolls every fragment back when
// one worker dies. The localized strategy keeps the survivors computing:
//
//   - Uncoordinated per-worker checkpoints: the monitor round-robins a
//     checkpoint request to one worker at a time; the worker snapshots its
//     own fragment state (Ψ, aux, active set, out-accumulators, sequence
//     cursors, undo log) inline at its next safe point. No barrier, no park.
//   - Sender-side message logging: every outbound batch is stamped with
//     (incarnation, sender, seq) at ship time and a copy is retained in a
//     driver-level per-link log until both endpoints' checkpoints commit it.
//   - Exactly-once ingestion: receivers keep a per-sender cursor, drop
//     duplicate sequence numbers and reorder-buffer gaps. This layer is also
//     active (in either recovery mode) whenever the fault plan injects link
//     faults, because dup/reorder fates are only safe for idempotent
//     aggregation — Δ-PageRank's accumulative h_in is not.
//
// When worker w dies, the monitor: bumps w's incarnation, truncates w's
// outgoing log back to its last checkpoint (the committed prefix), notifies
// every live peer — survivors un-apply (ace.Inverter) or tolerate
// (ace.IdempotentAggregator) w's uncommitted contributions and lower their
// cursors — waits for all acks, restores w's last checkpoint, replays the
// logged batches w lost since that checkpoint straight into its state, and
// respawns the goroutine. The cluster epoch is never bumped and no survivor
// loses post-checkpoint work.

// Recovery strategies accepted by LiveConfig.Recovery.
const (
	// RecoveryGlobal is PR 3's stop-and-sync checkpoints with whole-cluster
	// rollback; the default, and the fallback for programs that declare
	// neither ace.IdempotentAggregator nor ace.Inverter.
	RecoveryGlobal = "global"
	// RecoveryLocal is per-worker logging checkpoints with survivor-local
	// repair and message replay.
	RecoveryLocal = "local"
)

// liveLogSoftCap is the retained-batch count across the whole message log
// above which the monitor asks every live worker to checkpoint out of turn,
// so log retention (bounded by checkpoint lag) is pulled back down.
const liveLogSoftCap = 4096

// incBound records one rollback of a sender: streams of incarnations older
// than inc are committed only up to stable — later sequence numbers from
// those incarnations were rolled back and must not be accepted.
type incBound struct {
	inc    int32
	stable uint64
}

// undoHit is one applied contribution: Aggregate(psi[local], val) reported a
// change. Inverting it restores the pre-aggregation value.
type undoHit[V any] struct {
	local uint32
	val   V
}

// undoRec groups the applied contributions of one logged batch, keyed by the
// batch's sequence number so a rollback notice can un-apply exactly the
// uncommitted suffix.
type undoRec[V any] struct {
	seq  uint64
	hits []undoHit[V]
}

// rollNotice tells a survivor that sender rolled back: its streams older
// than inc are committed only up to stable.
type rollNotice struct {
	sender int
	inc    int32
	stable uint64
}

// rollEntry is the monitor's record of one rollback of a sender, with the
// per-receiver stable cut (the sender's checkpointed send sequence toward
// each peer). Restores use it to repair snapshots taken before the rollback.
type rollEntry struct {
	inc    int32
	stable []uint64
}

// recoverState is one worker's half of the exactly-once / localized-recovery
// protocol. It is owned by whoever owns the liveState (the worker goroutine,
// or the monitor during a restore).
type recoverState[V any] struct {
	myInc   int32    // this worker's current incarnation (stamped on sends)
	sendSeq []uint64 // last sequence number shipped to each peer
	expInc  []int32  // expected incarnation per sender
	cursor  []uint64 // highest contiguously applied sequence per sender
	robuf   []map[uint64][]ace.Message[V]
	bounds  [][]incBound // acceptance bounds for old-incarnation envelopes
	// undo logs applied contributions per sender for inversion on rollback;
	// nil for idempotent programs (re-application is harmless) and outside
	// local recovery (global rollback restores receivers wholesale).
	undo   [][]undoRec[V]
	invert func(cur, contrib V) V

	// Reorder-buffer accounting under a memory governor: bufMsgs counts the
	// messages currently held across robuf, acct carries their estimated
	// bytes. nil acct (the ungoverned default) makes both no-ops.
	acct    *mem.Account
	wire    int64
	bufMsgs int64
}

// noteBuf adjusts the reorder-buffer accounting by dm messages.
func (rs *recoverState[V]) noteBuf(dm int) {
	if rs.acct == nil || dm == 0 {
		return
	}
	rs.bufMsgs += int64(dm)
	rs.acct.Add(int64(dm) * rs.wire)
}

// resetBuf zeroes the accounting after the buffers were dropped wholesale
// (a restore clears every reorder buffer).
func (rs *recoverState[V]) resetBuf() {
	if rs.acct == nil || rs.bufMsgs == 0 {
		return
	}
	rs.acct.Add(-rs.bufMsgs * rs.wire)
	rs.bufMsgs = 0
}

func newRecoverState[V any](n int, invert func(cur, contrib V) V) *recoverState[V] {
	rs := &recoverState[V]{
		sendSeq: make([]uint64, n),
		expInc:  make([]int32, n),
		cursor:  make([]uint64, n),
		robuf:   make([]map[uint64][]ace.Message[V], n),
		bounds:  make([][]incBound, n),
	}
	if invert != nil {
		rs.undo = make([][]undoRec[V], n)
		rs.invert = invert
	}
	return rs
}

// boundLimit returns the highest sequence number still acceptable from an
// envelope of incarnation inc of sender s: the minimum stable cut over every
// rollback that superseded that incarnation.
func (rs *recoverState[V]) boundLimit(s int, inc int32) uint64 {
	limit := ^uint64(0)
	for _, b := range rs.bounds[s] {
		if b.inc > inc && b.stable < limit {
			limit = b.stable
		}
	}
	return limit
}

// recoveryHooks probes the program's capability for localized recovery:
// idempotent aggregation tolerates re-delivery outright; an Inverter lets
// survivors un-apply uncommitted contributions. Programs with neither force
// the driver back to global rollback.
func recoveryHooks[V any](prog ace.Program[V]) (capable bool, invert func(cur, contrib V) V) {
	if ia, ok := any(prog).(ace.IdempotentAggregator); ok && ia.IdempotentAggregate() {
		return true, nil
	}
	if iv, ok := any(prog).(ace.Inverter[V]); ok {
		return true, iv.Invert
	}
	return false, nil
}

// applyFrom is h_in for one sequenced batch: aggregate every message,
// re-activate dependents, and (when inverting) record the applied
// contributions under the batch's sequence number.
func (st *liveState[V]) applyFrom(s int, seq uint64, msgs []ace.Message[V]) {
	rs := st.rs
	var hits []undoHit[V]
	for _, m := range msgs {
		lv, ok := st.local(m.V)
		if !ok {
			continue
		}
		nv, ch := st.prog.Aggregate(st.psi[lv], m.Val)
		if !ch {
			continue
		}
		if rs.undo != nil {
			hits = append(hits, undoHit[V]{local: lv, val: m.Val})
		}
		st.psi[lv] = nv
		if st.deps == ace.DepSelf {
			if st.frag.IsOwned(lv) {
				st.active.Push(lv)
			}
		} else {
			st.activateDeps(lv)
		}
	}
	if rs.undo != nil && len(hits) > 0 {
		rs.undo[s] = append(rs.undo[s], undoRec[V]{seq: seq, hits: hits})
	}
}

// seqIngest routes one drained envelope through the exactly-once layer:
// duplicates are dropped, gaps are reorder-buffered, in-order batches are
// applied (draining any buffered successors). The caller has already counted
// the envelope as received — the termination ledger counts transport
// deliveries, not applications.
func (st *liveState[V]) seqIngest(env liveEnvelope[V], pool *batchPool[V], pooled bool) {
	rs := st.rs
	s := int(env.from)
	recycle := func(m []ace.Message[V]) {
		if pooled {
			pool.put(m)
		}
	}
	if env.inc != rs.expInc[s] {
		if env.inc > rs.expInc[s] {
			// Protocol violation (a restarted sender ships only after every
			// survivor acked its rollback); drop defensively.
			recycle(env.msgs)
			return
		}
		// Old incarnation: only its committed prefix survives the rollback —
		// everything past the stable cut is re-derived by the restarted
		// sender and must not be double-applied.
		if env.seq > rs.boundLimit(s, env.inc) {
			recycle(env.msgs)
			return
		}
	}
	switch {
	case env.seq <= rs.cursor[s]:
		recycle(env.msgs) // duplicate
	case env.seq == rs.cursor[s]+1:
		st.applyFrom(s, env.seq, env.msgs)
		recycle(env.msgs)
		rs.cursor[s] = env.seq
		for {
			m, ok := rs.robuf[s][rs.cursor[s]+1]
			if !ok {
				break
			}
			delete(rs.robuf[s], rs.cursor[s]+1)
			rs.noteBuf(-len(m))
			rs.cursor[s]++
			st.applyFrom(s, rs.cursor[s], m)
			recycle(m)
		}
	default:
		if rs.robuf[s] == nil {
			rs.robuf[s] = make(map[uint64][]ace.Message[V])
		}
		if _, dup := rs.robuf[s][env.seq]; dup {
			recycle(env.msgs)
		} else {
			rs.robuf[s][env.seq] = env.msgs
			rs.noteBuf(len(env.msgs))
		}
	}
}

// rollbackSender applies one rollback notice: record the acceptance bound,
// drop buffered uncommitted batches, un-apply uncommitted contributions
// (inverting programs), and lower the cursor to the stable cut so the
// restarted sender's re-derived stream is accepted. Idempotent per (sender,
// inc) — a restore may re-deliver a notice the snapshot already processed.
func (st *liveState[V]) rollbackSender(s int, inc int32, stable uint64) {
	rs := st.rs
	if rs.expInc[s] >= inc {
		return
	}
	rs.expInc[s] = inc
	rs.bounds[s] = append(rs.bounds[s], incBound{inc: inc, stable: stable})
	for seq, m := range rs.robuf[s] {
		if seq > stable {
			delete(rs.robuf[s], seq)
			rs.noteBuf(-len(m))
		}
	}
	if rs.undo != nil {
		keep := rs.undo[s][:0]
		for _, rec := range rs.undo[s] {
			if rec.seq <= stable {
				keep = append(keep, rec)
				continue
			}
			for _, h := range rec.hits {
				st.psi[h.local] = rs.invert(st.psi[h.local], h.val)
				if st.deps == ace.DepSelf {
					if st.frag.IsOwned(h.local) {
						st.active.Push(h.local)
					}
				} else {
					st.activateDeps(h.local)
				}
			}
		}
		rs.undo[s] = keep
	}
	if rs.cursor[s] > stable {
		rs.cursor[s] = stable
	}
}

// loggedBatch is one retained copy of a shipped batch. A spilled entry has
// paged its payload to the spill tier: msgs is nil and (off, n) address the
// record; readers resolve it through msgLog.fetch.
type loggedBatch[V any] struct {
	seq     uint64
	msgs    []ace.Message[V]
	n       int
	spilled bool
	off     int64
}

// msgLog is the driver-level sender-side message log: rows[from*n+to] holds
// the retained batches of one link in ascending sequence order. Senders
// append at ship time; checkpoints prune the committed prefix; the monitor
// truncates the uncommitted suffix on a rollback and reads the retained
// suffix for replay. Under a memory governor the log also keeps byte
// accounting and pages its oldest resident entries to the spill tier when
// the degradation ladder (or the retention byte cap) calls for it.
type msgLog[V any] struct {
	mu    sync.Mutex
	n     int
	rows  [][]loggedBatch[V]
	total int

	// Memory governance (set once by configure, before the run starts).
	acct *mem.Account
	gov  *mem.Governor
	sp   *mem.Spiller
	wire int64 // exact encoded bytes per message (0 = spilling disabled)
	est  int64 // accounting bytes per message

	ramBytes  int64 // accounted cost of resident entries (guarded by mu)
	diskBytes int64 // encoded bytes of spilled entries still referenced
	peakRet   int64 // high-water mark of ramBytes+diskBytes
	capBytes  int64 // per-receiver retention soft cap (0 = uncapped)
}

func newMsgLog[V any](n int) *msgLog[V] {
	return &msgLog[V]{n: n, rows: make([][]loggedBatch[V], n*n), est: msgWireEstimate}
}

// configure attaches the governor's accounting (and, when the budget is
// bounded and the value type has a fixed wire size, a spill file) to the
// log. Must be called before any append.
func (l *msgLog[V]) configure(gov *mem.Governor, wire int, capBytes int64) {
	l.acct = gov.Account("msglog")
	l.gov = gov
	l.capBytes = capBytes
	if wire > 0 {
		l.wire = int64(wire)
		l.est = int64(wire)
		if gov.Budget() > 0 {
			if sp, err := gov.NewSpiller("msglog"); err == nil {
				l.sp = sp
			}
		}
	}
}

// ramCost is the accounted RAM cost of one resident n-message entry.
func (l *msgLog[V]) ramCost(n int) int64 { return int64(n)*l.est + logEntryOverhead }

// diskCost is the encoded size of one spilled n-message entry.
func (l *msgLog[V]) diskCost(n int) int64 { return int64(n) * l.wire }

func (l *msgLog[V]) append(from, to int, seq uint64, msgs []ace.Message[V]) {
	cp := append([]ace.Message[V](nil), msgs...)
	cost := l.ramCost(len(cp))
	l.mu.Lock()
	k := from*l.n + to
	l.rows[k] = append(l.rows[k], loggedBatch[V]{seq: seq, msgs: cp, n: len(cp)})
	l.total++
	l.ramBytes += cost
	if t := l.ramBytes + l.diskBytes; t > l.peakRet {
		l.peakRet = t
	}
	l.acct.Add(cost)
	l.spillToTargetLocked()
	l.mu.Unlock()
}

// spillQuantum bounds the encoded bytes one spillToTargetLocked call may
// write. Paging happens synchronously inside the sender's append, between
// two heartbeats: an unbounded pass under a tight budget could stall the
// worker past the heartbeat timeout and read as a death. Residual pressure
// is drained by the next appends instead.
const spillQuantum = 256 << 10

// spillToTargetLocked pages the oldest resident entries to the spill tier
// until the resident cost drops to the stage's target: half under StageCkpt
// (or past the retention cap), everything under StageThrottle and beyond.
// Rows are drained round-robin, oldest entry first, so no link monopolizes
// the tier. Encoding failures leave the entry resident — spilling is an
// optimization, retention correctness never depends on it.
func (l *msgLog[V]) spillToTargetLocked() {
	if l.sp == nil {
		return
	}
	target := int64(-1)
	switch l.gov.Stage() {
	case mem.StageCkpt:
		target = l.ramBytes / 2
	case mem.StageThrottle, mem.StageStream:
		target = 0
	}
	if l.capBytes > 0 && l.ramBytes > l.capBytes && (target < 0 || target > l.capBytes/2) {
		target = l.capBytes / 2
	}
	if target < 0 || l.ramBytes <= target {
		return
	}
	written := int64(0)
	for l.ramBytes > target && written < spillQuantum {
		paged := false
		for k := range l.rows {
			if l.ramBytes <= target || written >= spillQuantum {
				break
			}
			row := l.rows[k]
			for i := range row {
				if row[i].spilled {
					continue
				}
				p, err := encodeMsgs(row[i].msgs)
				if err != nil {
					return
				}
				off, err := l.sp.Append(p)
				if err != nil {
					return
				}
				written += int64(len(p))
				cost := l.ramCost(row[i].n)
				row[i].spilled = true
				row[i].off = off
				row[i].msgs = nil
				l.ramBytes -= cost
				l.diskBytes += l.diskCost(row[i].n)
				l.acct.Add(-cost)
				paged = true
				break // oldest resident entry of this row, then next row
			}
		}
		if !paged {
			return
		}
	}
}

// fetch resolves one entry's messages, reading spilled entries back from the
// tier. Safe without the log mutex: entry headers handed out by after are
// copies, payloads and spill records are immutable once written.
func (l *msgLog[V]) fetch(e loggedBatch[V]) ([]ace.Message[V], error) {
	if !e.spilled {
		return e.msgs, nil
	}
	return decodeMsgs[V](l.sp, e.off, e.n, int(l.wire))
}

// dropLocked releases one entry's accounting (RAM or spill tier).
func (l *msgLog[V]) dropLocked(e *loggedBatch[V]) {
	if e.spilled {
		c := l.diskCost(e.n)
		l.diskBytes -= c
		l.sp.Release(c)
	} else {
		c := l.ramCost(e.n)
		l.ramBytes -= c
		l.acct.Add(-c)
	}
	e.msgs = nil
}

// truncate drops every batch from sender past its per-receiver stable cut:
// the restarted incarnation re-derives and re-logs that suffix.
func (l *msgLog[V]) truncate(from int, stable []uint64) {
	l.mu.Lock()
	for to := 0; to < l.n; to++ {
		k := from*l.n + to
		row := l.rows[k]
		i := len(row)
		for i > 0 && row[i-1].seq > stable[to] {
			i--
		}
		l.total -= len(row) - i
		for j := i; j < len(row); j++ {
			l.dropLocked(&row[j])
			row[j] = loggedBatch[V]{}
		}
		l.rows[k] = row[:i]
	}
	l.mu.Unlock()
}

// prune discards the committed prefix of one link (seq <= bound).
func (l *msgLog[V]) prune(from, to int, bound uint64) {
	l.mu.Lock()
	k := from*l.n + to
	row := l.rows[k]
	i := 0
	for i < len(row) && row[i].seq <= bound {
		l.dropLocked(&row[i])
		i++
	}
	if i > 0 {
		l.total -= i
		l.rows[k] = row[i:]
	}
	l.mu.Unlock()
}

// after returns the retained batches of one link past cursor as header
// copies: payloads and spill records are immutable once written, but the log
// may page an entry out in place while the caller iterates, so the headers
// themselves must be snapshotted under the mutex. Callers resolve payloads
// through fetch.
func (l *msgLog[V]) after(from, to int, cursor uint64) []loggedBatch[V] {
	l.mu.Lock()
	defer l.mu.Unlock()
	row := l.rows[from*l.n+to]
	i := 0
	for i < len(row) && row[i].seq <= cursor {
		i++
	}
	if i == len(row) {
		return nil
	}
	return append([]loggedBatch[V](nil), row[i:]...)
}

// retainedToward sums the retained bytes (RAM and spilled) of every row
// shipping to receiver to — the quantity a slow-to-checkpoint receiver
// grows, and what LogBytesSoftCap bounds.
func (l *msgLog[V]) retainedToward(to int) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var b int64
	for from := 0; from < l.n; from++ {
		for _, e := range l.rows[from*l.n+to] {
			if e.spilled {
				b += l.diskCost(e.n)
			} else {
				b += l.ramCost(e.n)
			}
		}
	}
	return b
}

// bytes reports the log's current RAM cost, spilled bytes and the high-water
// mark of total retention.
func (l *msgLog[V]) bytes() (ram, disk, peak int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ramBytes, l.diskBytes, l.peakRet
}

// retainedFrom counts the batches retained across one sender's rows.
func (l *msgLog[V]) retainedFrom(from int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for to := 0; to < l.n; to++ {
		n += len(l.rows[from*l.n+to])
	}
	return n
}

func (l *msgLog[V]) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// localSnap is one worker's uncoordinated checkpoint: the fragment snapshot
// (including sequence state) plus the receive-side protocol state needed to
// repair it against rollbacks that happen after it was taken.
type localSnap[V any] struct {
	valid  bool
	base   liveSnap[V]
	expInc []int32
	bounds [][]incBound
	undo   [][]undoRec[V]
	// page holds the bulky snapshot parts when they were paged to the spill
	// tier at checkpoint time (base.psi/active/out are then nil); restores
	// materialize it back without consuming it.
	page *snapPage
}

// takeLocalCkpt snapshots the calling worker's state inline (no barrier, no
// park) and publishes it together with the stable cursors that let peers
// prune their logs. Called only from the worker's own safe points, so the
// state is quiescent: no half-applied batch, no half-flushed accumulator.
func (d *liveDriver[V]) takeLocalCkpt(st *liveState[V]) {
	id := st.id
	rs := st.rs
	n := d.n
	// Prune the undo log first: contributions at or below the sender's own
	// checkpoint can never be rolled back (a sender never restores past its
	// last checkpoint, and stableSent only advances).
	if rs.undo != nil {
		for s := 0; s < n; s++ {
			if s == id || len(rs.undo[s]) == 0 {
				continue
			}
			floor := d.stableSent[s*n+id].Load()
			keep := rs.undo[s][:0]
			for _, rec := range rs.undo[s] {
				if rec.seq > floor {
					keep = append(keep, rec)
				}
			}
			rs.undo[s] = keep
		}
	}
	snap := localSnap[V]{
		valid:  true,
		base:   captureLive(st),
		expInc: append([]int32(nil), rs.expInc...),
		bounds: make([][]incBound, n),
	}
	for s := 0; s < n; s++ {
		snap.bounds[s] = append([]incBound(nil), rs.bounds[s]...)
	}
	if rs.undo != nil {
		snap.undo = make([][]undoRec[V], n)
		for s := 0; s < n; s++ {
			// undoRec.hits slices are immutable after creation, so sharing
			// them between the live log and the snapshot is safe.
			snap.undo[s] = append([]undoRec[V](nil), rs.undo[s]...)
		}
	}
	// Account the snapshot and, under memory pressure, page its bulky parts
	// (Ψ, active set, out-accumulators) to the spill tier; the repair state
	// stays resident. The superseded snapshot's page is released.
	cost := snapResidentBytes(&snap.base, d.vSize, d.wireEst)
	if d.snapSp != nil && d.gov.Stage() >= mem.StageCkpt {
		if pg, err := spillSnap(d.snapSp, &snap.base); err == nil {
			snap.page = pg
			cost = 0
			if tr := d.cfg.Tracer; tr != nil {
				tr.Mark(id, obs.MarkSpill, float64(sinceFn(d.start))/1e3)
			}
		}
	}
	d.localMu.Lock()
	old := d.localSnaps[id]
	d.localSnaps[id] = snap
	d.localMu.Unlock()
	if old.page != nil {
		old.page.sp.Release(old.page.size)
	}
	if d.ckptBytes != nil {
		d.ckptAcct.Add(cost - d.ckptBytes[id])
		d.ckptBytes[id] = cost
	}
	// Publish the stable cursors. Order matters for pruners: snapExpInc is
	// stored last and read first, so a reader that sees the new incarnation
	// view is guaranteed to also see the matching (or newer) cursors.
	for j := 0; j < n; j++ {
		d.stableSent[id*n+j].Store(rs.sendSeq[j])
		d.stableRecv[id*n+j].Store(rs.cursor[j])
		d.snapExpInc[id*n+j].Store(rs.expInc[j])
	}
	d.pruneLog(id)
	d.checkpoints.Add(1)
}

// pruneLog discards the committed prefix of every outgoing row of sender:
// batches the receiver's published checkpoint has absorbed — unless a
// rollback of the sender newer than that checkpoint exposes the receiver to
// a deeper restore cursor, in which case the prune floor is clamped to the
// rollback's stable cut.
func (d *liveDriver[V]) pruneLog(sender int) {
	n := d.n
	for j := 0; j < n; j++ {
		if j == sender {
			continue
		}
		// Read snapExpInc before stableRecv (the writer stores stableRecv
		// first): seeing a new incarnation view implies the matching cursor
		// is visible too, so the clamp below can never be skipped stale.
		sx := d.snapExpInc[j*n+sender].Load()
		bound := d.stableRecv[j*n+sender].Load()
		d.rollMu.Lock()
		for _, e := range d.rollHist[sender] {
			if e.inc > sx && e.stable[j] < bound {
				bound = e.stable[j]
			}
		}
		d.rollMu.Unlock()
		d.mlog.prune(sender, j, bound)
	}
}

// drainNotices processes any pending rollback notices for st's worker and
// acks them. Returns the number processed. Callable from any of the worker's
// safe points, including the send retry loop (a survivor blocked on a dead
// peer's full mailbox must still ack, or recovery would deadlock).
func (d *liveDriver[V]) drainNotices(st *liveState[V]) int {
	id := st.id
	if !d.noticeFlag[id].Load() {
		return 0
	}
	d.noticeMu.Lock()
	ns := d.noticeQ[id]
	d.noticeQ[id] = nil
	d.noticeFlag[id].Store(false)
	d.noticeMu.Unlock()
	for _, nt := range ns {
		st.rollbackSender(nt.sender, nt.inc, nt.stable)
	}
	if len(ns) > 0 {
		d.acksOut.Add(int64(-len(ns)))
		if d.diag {
			d.wacked[id].Add(int64(len(ns)))
		}
	}
	return len(ns)
}

// requestLocalCkpt asks the next live worker (round-robin) to checkpoint at
// its next safe point; when the message log has outgrown its soft cap, every
// live worker is asked at once so retention is pulled back down.
func (d *liveDriver[V]) requestLocalCkpt() {
	if d.mlog.size() > liveLogSoftCap {
		d.ctrl.mu.Lock()
		for i := 0; i < d.n; i++ {
			if !d.ctrl.dead[i] {
				d.ckptReq[i].Store(true)
			}
		}
		d.ctrl.mu.Unlock()
		return
	}
	for probe := 0; probe < d.n; probe++ {
		w := d.ckptNext
		d.ckptNext = (d.ckptNext + 1) % d.n
		d.ctrl.mu.Lock()
		dead := d.ctrl.dead[w]
		d.ctrl.mu.Unlock()
		if !dead {
			d.ckptReq[w].Store(true)
			return
		}
	}
}

// stageLocalDead runs phase A of a localized recovery for a newly detected
// death: claim the worker busy so termination cannot race the restore, bump
// its incarnation, truncate its uncommitted log suffix, record the rollback,
// and notify every live peer. Returns false when the run is already over or
// the death is unrecoverable.
func (d *liveDriver[V]) stageLocalDead(w int) bool {
	d.ctrl.mu.Lock()
	r := d.ctrl.restart[w]
	d.ctrl.mu.Unlock()
	if r == liveRestartUnknown {
		// Never announced: either a heartbeat false positive (a stalled
		// goroutine whose beat will resume, letting resurrectStalled clear
		// the mark) or a genuinely wedged worker. Restoring under a
		// possibly-live goroutine would race, so wait the grace window out
		// before condemning the run.
		if sinceFn(d.start)-time.Duration(d.ctrl.beats[w].Load()) <= d.deathGrace() {
			return false
		}
		d.ctrl.mu.Lock()
		d.ctrl.unrecoverable = true
		d.ctrl.mu.Unlock()
		return false
	}
	if r < 0 {
		// Announced permanent death: hand the run to the watchdog.
		d.ctrl.mu.Lock()
		d.ctrl.unrecoverable = true
		d.ctrl.mu.Unlock()
		return false
	}
	if !d.coord.claimBusy(w) {
		return false // quiescence already closed: pre-crash state is final
	}
	d.detectAt[w] = sinceFn(d.start)
	// The dead worker can no longer ack notices queued to it.
	d.noticeMu.Lock()
	if k := len(d.noticeQ[w]); k > 0 {
		d.noticeQ[w] = nil
		d.acksOut.Add(int64(-k))
	}
	d.noticeFlag[w].Store(false)
	d.noticeMu.Unlock()
	inc := d.incOf[w].Add(1)
	stable := make([]uint64, d.n)
	for j := 0; j < d.n; j++ {
		stable[j] = d.stableSent[w*d.n+j].Load()
	}
	d.mlog.truncate(w, stable)
	d.rollMu.Lock()
	d.rollHist[w] = append(d.rollHist[w], rollEntry{inc: inc, stable: stable})
	d.rollMu.Unlock()
	d.ctrl.mu.Lock()
	for j := 0; j < d.n; j++ {
		announcedDead := d.ctrl.dead[j] && d.ctrl.restart[j] != liveRestartUnknown
		if j == w || announcedDead || d.recState[j] != 0 {
			// Announced-dead or staged peers are repaired at their own
			// restore via the rollback history instead of a notice. An
			// unannounced-dead peer still gets one: it is either a stalled
			// goroutine that will resurrect, resume draining and ack (it
			// never restores, so the history would not repair it), or truly
			// wedged — in which case the grace window fails the run anyway.
			continue
		}
		d.noticeMu.Lock()
		d.noticeQ[j] = append(d.noticeQ[j], rollNotice{sender: w, inc: inc, stable: stable[j]})
		d.noticeFlag[j].Store(true)
		d.acksOut.Add(1)
		d.noticeMu.Unlock()
	}
	d.ctrl.mu.Unlock()
	d.recState[w] = 1
	return true
}

// restoreLocal rolls worker w back to its own last checkpoint and repairs
// the snapshot against every peer rollback that happened after it was taken
// (the snapshot predates those notices, so they are re-applied here from the
// rollback history). The monitor owns w's state: the goroutine is gone.
// Returns false when a paged checkpoint cannot be read back — the run is
// then failed with a descriptive error.
func (d *liveDriver[V]) restoreLocal(w int) bool {
	st := d.states[w]
	rs := st.rs
	d.localMu.Lock()
	snap := d.localSnaps[w]
	d.localMu.Unlock()
	if snap.page != nil {
		// The local copy materializes the page; the stored snapshot keeps
		// only the page reference, so later restores re-read it.
		if err := unspillSnap(snap.page, &snap.base); err != nil {
			d.coord.fail(fmt.Errorf("gap: restore worker %d from spilled checkpoint: %w", w, err))
			return false
		}
	}
	restoreLive(st, &snap.base)
	copy(rs.expInc, snap.expInc)
	for s := 0; s < d.n; s++ {
		rs.bounds[s] = append(rs.bounds[s][:0], snap.bounds[s]...)
	}
	if rs.undo != nil {
		for s := 0; s < d.n; s++ {
			rs.undo[s] = append(rs.undo[s][:0], snap.undo[s]...)
		}
	}
	d.rollMu.Lock()
	for s := 0; s < d.n; s++ {
		if s == w {
			continue
		}
		for _, e := range d.rollHist[s] {
			if e.inc > rs.expInc[s] {
				st.rollbackSender(s, e.inc, e.stable[w])
			}
		}
	}
	d.rollMu.Unlock()
	rs.myInc = d.incOf[w].Load()
	return true
}

// replayInto re-applies the logged batches worker w lost since its restored
// cursors, straight into its state through the same h_in path a live drain
// would use. Replayed messages are not counted in the termination ledger —
// their original deliveries already balanced it. Returns the total messages
// replayed and the per-sender breakdown (the replay-backlog metric both the
// victim's and the surviving peers' η reseeds key off).
func (d *liveDriver[V]) replayInto(w int) (int64, []int64) {
	st := d.states[w]
	rs := st.rs
	tr := d.cfg.Tracer
	var total int64
	bySender := make([]int64, d.n)
	for s := 0; s < d.n; s++ {
		if s == w {
			continue
		}
		entries := d.mlog.after(s, w, rs.cursor[s])
		if len(entries) == 0 {
			continue
		}
		for _, e := range entries {
			if e.seq != rs.cursor[s]+1 {
				break // gap: the rest is still in flight, the drain path applies it
			}
			msgs, err := d.mlog.fetch(e)
			if err != nil {
				d.coord.fail(fmt.Errorf("gap: replay worker %d from spilled log: %w", w, err))
				return total, bySender
			}
			st.applyFrom(s, e.seq, msgs)
			if e.spilled {
				d.replayedDisk.Add(int64(e.n))
			}
			rs.cursor[s] = e.seq
			total += int64(len(msgs))
			bySender[s] += int64(len(msgs))
		}
		if tr != nil {
			tr.Mark(s, obs.MarkReplay, float64(sinceFn(d.start))/1e3)
		}
	}
	return total, bySender
}

// runLocalRecovery is the monitor's per-tick localized-recovery step:
// stage any newly detected deaths (phase A), wait for every survivor ack
// (phase B, non-blocking — re-entered next tick), then restore, replay and
// respawn each staged worker whose restart delay has elapsed (phase C).
// Returns true when at least one worker was respawned.
func (d *liveDriver[V]) runLocalRecovery() bool {
	tr := d.cfg.Tracer
	ts := func() float64 { return float64(sinceFn(d.start)) / 1e3 }
	d.ctrl.mu.Lock()
	var fresh []int
	for i, dd := range d.ctrl.dead {
		if dd && d.recState[i] == 0 {
			fresh = append(fresh, i)
		}
	}
	d.ctrl.mu.Unlock()
	for _, w := range fresh {
		d.ctrl.mu.Lock()
		unannounced := d.ctrl.restart[w] == liveRestartUnknown
		d.ctrl.mu.Unlock()
		if unannounced && sinceFn(d.start)-time.Duration(d.ctrl.beats[w].Load()) <= d.deathGrace() {
			continue // undecided: resurrection or grace expiry resolves it
		}
		if !d.stageLocalDead(w) {
			return false
		}
	}
	if out := d.acksOut.Load(); out != 0 {
		if tr != nil {
			tr.Sample(d.n, obs.GaugeAcksOut, ts(), float64(out))
		}
		return false
	}
	revived := false
	for w := 0; w < d.n; w++ {
		if d.recState[w] != 1 {
			continue
		}
		d.ctrl.mu.Lock()
		restartMS := d.ctrl.restart[w]
		d.ctrl.mu.Unlock()
		if restartMS > 0 && sinceFn(d.start)-d.detectAt[w] < time.Duration(restartMS*float64(time.Millisecond)) {
			continue // restart delay not elapsed; retry next tick
		}
		if tr != nil {
			tr.SpanBegin(d.n, obs.PhaseRecovery, ts())
		}
		if !d.restoreLocal(w) {
			return false
		}
		if tr != nil {
			tr.SpanBegin(d.n, obs.PhaseReplay, ts())
		}
		replayed, bySender := d.replayInto(w)
		if tr != nil {
			t1 := ts()
			tr.SpanEnd(d.n, obs.PhaseReplay, t1)
			tr.Count(d.n, obs.CounterReplayed, t1, replayed)
			tr.Sample(d.n, obs.GaugeLogSize, t1, float64(d.mlog.size()))
		}
		d.replayed.Add(replayed)
		now := sinceFn(d.start)
		d.recoveryNS.Add(int64(now - d.detectAt[w]))
		// Straggler-aware η reseed: a worker restarting into a deep replayed
		// backlog (or after a long recovery) re-enters with a finer check
		// granularity so it interleaves draining and flushing instead of
		// burning a full coarse wave on stale state; its next idle transition
		// restores the configured bound.
		if d.ckEvery != nil && d.cfg.CheckEvery > 1 {
			ce := d.ckEvery[w].Load()
			for ce > 8 && replayed >= int64(ce)*4 {
				ce /= 2
			}
			if ce > 8 && float64(now-d.detectAt[w]) > 100*float64(time.Millisecond) {
				ce /= 2
			}
			if ce != d.ckEvery[w].Load() {
				d.ckEvery[w].Store(ce)
				d.etaReseeds.Add(1)
				if tr != nil {
					t := ts()
					tr.Sample(w, obs.GaugeEta, t, float64(ce))
					tr.Count(w, obs.CounterEtaReseeds, t, 1)
				}
			}
			// Peer reseed (R1 wake-up thresholds): a surviving sender whose
			// log replayed a deep backlog into the restarted worker was
			// running far ahead of it. Halving that peer's effective check
			// granularity makes it hit its indicator checks — and the R1
			// wake-up flushes they trigger — proportionally more often, so
			// the victim catches up on fresh deltas instead of coarse stale
			// waves. Same backlog metric, same floor, and the same idle-
			// transition restore as the victim's η reseed.
			for s := 0; s < d.n; s++ {
				if s == w || bySender[s] == 0 {
					continue
				}
				pce := d.ckEvery[s].Load()
				for pce > 8 && bySender[s] >= int64(pce)*4 {
					pce /= 2
				}
				if pce != d.ckEvery[s].Load() {
					d.ckEvery[s].Store(pce)
					d.etaReseeds.Add(1)
					if tr != nil {
						t := ts()
						tr.Sample(s, obs.GaugeEta, t, float64(pce))
						tr.Count(s, obs.CounterEtaReseeds, t, 1)
					}
				}
			}
		}
		d.ctrl.mu.Lock()
		d.ctrl.dead[w] = false
		d.ctrl.nDead--
		d.ctrl.restart[w] = liveRestartUnknown
		d.ctrl.beats[w].Store(int64(now))
		d.ctrl.mu.Unlock()
		d.recState[w] = 0
		d.recoveries.Add(1)
		if tr != nil {
			tr.Mark(w, obs.MarkRestart, ts())
			tr.SpanEnd(d.n, obs.PhaseRecovery, ts())
		}
		d.wg.Add(1)
		go d.worker(d.states[w], 0) // the epoch never bumps under local recovery
		revived = true
	}
	return revived
}

// stuckDetail renders the per-worker diagnosis appended to the watchdog's
// stuck-run error: transport counters, last-heartbeat ages, death/staging
// status, log retention and outstanding acks — enough to read a chaos-CI
// failure from the log alone.
func (d *liveDriver[V]) stuckDetail() string {
	if !d.diag {
		return ""
	}
	var b strings.Builder
	now := sinceFn(d.start)
	d.ctrl.mu.Lock()
	dead := append([]bool(nil), d.ctrl.dead...)
	restart := append([]float64(nil), d.ctrl.restart...)
	d.ctrl.mu.Unlock()
	for i := 0; i < d.n; i++ {
		age := now - time.Duration(d.ctrl.beats[i].Load())
		status := "live"
		if dead[i] {
			status = "dead"
			if restart[i] == liveRestartUnknown {
				status = "dead(unannounced)"
			}
			if d.recState != nil && d.recState[i] != 0 {
				status = "dead(staged)"
			}
		}
		fmt.Fprintf(&b, "\n  worker %d [%s]: sent=%d recv=%d acked=%d beat=%.1fms ago",
			i, status, d.wsent[i].Load(), d.wrecv[i].Load(), d.wacked[i].Load(),
			float64(age)/1e6)
		if d.mlog != nil {
			fmt.Fprintf(&b, " log=%d", d.mlog.retainedFrom(i))
		}
	}
	if d.localRec {
		fmt.Fprintf(&b, "\n  acks outstanding=%d", d.acksOut.Load())
	}
	return b.String()
}
