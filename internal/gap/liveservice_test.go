package gap

// Control-plane features the multi-tenant job service leans on: client
// cancellation through LiveConfig.Cancel, panic containment (a panicking
// worker fails its own run instead of crashing the process), survivor-side
// granularity reseeds after a neighbor restart, and HealthTracker state
// transitions across restart/resurrect/drain.

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"argan/internal/ace"
	"argan/internal/algorithms"
	"argan/internal/obs"
)

func TestLiveCancelMidRun(t *testing.T) {
	g := testGraph(true, 41)
	cancel := make(chan struct{})
	health := &HealthTracker{}
	cfg := LiveConfig{
		Mode: ModeGAP, CheckEvery: 1, Cancel: cancel, Health: health,
		// Slow every worker so the run is reliably still in flight when
		// the cancellation lands.
		Faults: faultPlan(t, "slow=0@0:30000:40; slow=1@0:30000:40"),
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(cancel)
	}()
	start := time.Now()
	_, _, err := RunLive(frags(t, g, 2), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	// The whole point of Cancel: the run aborts promptly instead of
	// grinding through the remaining (slowed) waves.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	h := health.Health()
	if h.Running || h.Failed != 1 {
		t.Fatalf("health after cancel: %+v", h)
	}
}

func TestLiveCancelPreClosed(t *testing.T) {
	g := testGraph(true, 42)
	cancel := make(chan struct{})
	close(cancel)
	cfg := LiveConfig{
		Mode: ModeGAP, CheckEvery: 1, Cancel: cancel,
		Faults: faultPlan(t, "slow=0@0:30000:40; slow=1@0:30000:40"),
	}
	_, _, err := RunLive(frags(t, g, 2), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// TestLivePanicFaultContained: an injected worker panic (fault clause
// "panic=W@uN") must surface as a contained run failure wrapping
// ErrWorkerPanic — never a process crash — with the worker identified.
func TestLivePanicFaultContained(t *testing.T) {
	g := testGraph(true, 43)
	cfg := LiveConfig{Mode: ModeGAP, CheckEvery: 1}
	cfg.Faults = faultPlan(t, "panic=1@u30")
	_, _, err := RunLive(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("want ErrWorkerPanic, got %v", err)
	}
	if !strings.Contains(err.Error(), "worker 1") || !strings.Contains(err.Error(), "injected panic") {
		t.Fatalf("panic error lacks attribution: %v", err)
	}
}

// bombProg wraps a real program and panics on the Nth Update call — from
// whatever goroutine happens to run it, which under IntraParallelism > 1 is
// a shard goroutine inside the parallel sweep.
type bombProg struct {
	ace.Program[float64]
	calls *atomic.Int64
	at    int64
}

func (p *bombProg) Update(ctx *ace.Ctx[float64], local uint32) {
	if p.calls.Add(1) == p.at {
		panic("test: update bomb")
	}
	p.Program.Update(ctx, local)
}

func (p *bombProg) ShardSafe() bool { return true }

// TestLivePanicInShardContained: a panic raised on a shard goroutine of the
// intra-parallel evaluator must propagate to the worker (after the wave
// barrier, so no shard goroutine leaks) and fail the run contained.
func TestLivePanicInShardContained(t *testing.T) {
	g := testGraph(true, 44)
	var calls atomic.Int64
	factory := func() ace.Program[float64] {
		return &bombProg{Program: algorithms.NewSSSP()(), calls: &calls, at: 25}
	}
	cfg := LiveConfig{Mode: ModeGAP, IntraParallelism: 4}
	_, _, err := RunLive(frags(t, g, 2), factory, ace.Query{Source: 0}, cfg)
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("want ErrWorkerPanic, got %v", err)
	}
	if !strings.Contains(err.Error(), "update bomb") {
		t.Fatalf("panic payload lost: %v", err)
	}
}

// TestPeerEtaReseedAfterNeighborRestart: after a localized recovery, the
// *survivors* that replayed a large backlog into the victim must reseed
// their own wake-up granularity too, not just the victim (they are the ones
// whose batches went unacknowledged — their next waves face the same
// backlog). With CheckEvery=16 a peer reseeds once its own share of the
// replay reaches 4×16; with three peers, any replay total >= 3*63+1
// guarantees at least one peer crossed that bar (pigeonhole), so victim +
// peer reseeds must both appear.
func TestPeerEtaReseedAfterNeighborRestart(t *testing.T) {
	g := testGraph(true, 45)
	rec := obs.NewRecorder(4, 1<<16)
	cfg := localFTConfig()
	cfg.CheckEvery = 16
	cfg.CheckpointEvery = 500 * time.Millisecond // stale checkpoints → big replay
	cfg.Tracer = rec
	cfg.Faults = faultPlan(t, "crash=1@u400+20; slow=1@0:200:10")
	_, lm, err := RunLive(frags(t, g, 4), algorithms.NewPageRank(), ace.Query{Eps: 1e-3}, cfg)
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	if lm.Crashes != 1 || lm.Recoveries < 1 {
		t.Fatalf("crashes=%d recoveries=%d", lm.Crashes, lm.Recoveries)
	}
	t.Logf("replayed=%d etaReseeds=%d", lm.Replayed, lm.EtaReseeds)
	if lm.Replayed >= 3*63+1 {
		if lm.EtaReseeds < 2 {
			t.Fatalf("replayed %d messages but only %d reseeds: survivors did not reseed", lm.Replayed, lm.EtaReseeds)
		}
		// At least one reseed must belong to a surviving peer (worker != 1).
		peerReseeds := int64(0)
		for _, w := range rec.Snapshot().Workers {
			if w.Worker != 1 {
				peerReseeds += w.Counters[obs.CounterEtaReseeds]
			}
		}
		if peerReseeds == 0 {
			t.Fatalf("%d reseeds recorded but none on a surviving peer", lm.EtaReseeds)
		}
	}
}

// TestHealthTrackerTransitions (unit): ready → degraded → ready across a
// restart/resurrect cycle, and draining as a process-lifetime latch that
// survives the next run's reset.
func TestHealthTrackerTransitions(t *testing.T) {
	tr := &HealthTracker{}
	if h := tr.Health(); h.Running || h.Draining {
		t.Fatalf("zero tracker: %+v", h)
	}

	tr.runStarted(4, RecoveryLocal, time.Second)
	if h := tr.Health(); !h.Running || h.Workers != 4 || h.Recovery != RecoveryLocal {
		t.Fatalf("after runStarted: %+v", h)
	}

	// Degraded: the heartbeat detector reports a dead worker.
	tr.publish(func(h *Health) { h.Dead = 1 })
	if h := tr.Health(); h.Dead != 1 || !h.Running {
		t.Fatalf("degraded: %+v", h)
	}
	// Resurrected: localized recovery restores the worker.
	tr.publish(func(h *Health) { h.Dead = 0 })
	if h := tr.Health(); h.Dead != 0 || !h.Running {
		t.Fatalf("back to ready: %+v", h)
	}

	tr.runEnded(nil)
	if h := tr.Health(); h.Running || h.Completed != 1 || h.Failed != 0 {
		t.Fatalf("after clean run: %+v", h)
	}
	tr.runEnded(errors.New("boom"))
	if h := tr.Health(); h.Failed != 1 || h.Err != "boom" {
		t.Fatalf("after failed run: %+v", h)
	}

	// Draining latches across runStarted: a draining process never reports
	// ready again, even if another run begins meanwhile.
	tr.SetDraining(true)
	tr.runStarted(2, RecoveryGlobal, 0)
	if h := tr.Health(); !h.Draining || !h.Running || h.Workers != 2 {
		t.Fatalf("draining must survive runStarted: %+v", h)
	}
	tr.SetDraining(false)
	if h := tr.Health(); h.Draining {
		t.Fatalf("draining unlatch: %+v", h)
	}

	// nil tracker: every method is a safe no-op (drivers call these
	// unconditionally).
	var nilTr *HealthTracker
	nilTr.SetDraining(true)
	nilTr.runStarted(1, "", 0)
	nilTr.runEnded(nil)
	if h := nilTr.Health(); h.Running {
		t.Fatalf("nil tracker: %+v", h)
	}
}

// TestHealthTrackerAcrossLiveRestart (end-to-end): a crash + localized
// restart run must end ready — zero dead workers, the run completed — with
// the degraded episode visible in the recovery metrics.
func TestHealthTrackerAcrossLiveRestart(t *testing.T) {
	g := testGraph(true, 46)
	health := &HealthTracker{}
	cfg := localFTConfig()
	cfg.Health = health
	cfg.Faults = faultPlan(t, "crash=1@u60+10")
	_, lm, err := RunLive(frags(t, g, 4), algorithms.NewSSSP(), ace.Query{Source: 0}, cfg)
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	if lm.Crashes != 1 || lm.Recoveries < 1 {
		t.Fatalf("crashes=%d recoveries=%d", lm.Crashes, lm.Recoveries)
	}
	h := health.Health()
	if h.Running || h.Dead != 0 || h.Completed != 1 || h.Unrecoverable {
		t.Fatalf("health after restart cycle: %+v", h)
	}
}
