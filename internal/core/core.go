// Package core is the Argan engine facade: it assembles the graph
// substrate, partitioner, network model, GAP runtime and adaptive
// granularity into one entry point, and exposes typed runners for the
// built-in graph applications.
package core

import (
	"fmt"

	"argan/internal/ace"
	"argan/internal/adapt"
	"argan/internal/algorithms"
	"argan/internal/gap"
	"argan/internal/graph"
	"argan/internal/netsim"
	"argan/internal/partition"
)

// Env describes the (simulated) cluster a query runs on.
type Env struct {
	// Workers is the number of workers n (default 16).
	Workers int
	// Partitioner splits the graph (default partition.Hash).
	Partitioner partition.Partitioner
	// Net is the interconnect model (default netsim.DefaultCostModel).
	Net *netsim.Network
	// Hetero is the execution-noise amplitude modeling a multi-tenant
	// cluster (default 0; the benchmark harness uses 1.2).
	Hetero float64
}

func (e Env) withDefaults() Env {
	if e.Workers <= 0 {
		e.Workers = 16
	}
	if e.Partitioner == nil {
		e.Partitioner = partition.Hash{}
	}
	if e.Net == nil {
		e.Net = netsim.NewNetwork(netsim.DefaultCostModel(), 1)
	}
	return e
}

// Fragments partitions g according to the environment.
func (e Env) Fragments(g *graph.Graph) ([]*graph.Fragment, error) {
	e = e.withDefaults()
	return partition.Partition(g, e.Partitioner, e.Workers)
}

// Config returns the engine configuration for this environment merged with
// the given mode/adaptation choice.
func (e Env) Config(mode gap.Mode, policy adapt.Policy) gap.Config {
	e = e.withDefaults()
	return gap.Config{Mode: mode, Adapt: policy, Net: e.Net, Hetero: e.Hetero}
}

// DefaultConfig is the Argan default: GAP with GAwD adjustment.
func (e Env) DefaultConfig() gap.Config { return e.Config(gap.ModeGAP, adapt.PolicyGAwD) }

// Result pairs a typed per-vertex answer with run metrics.
type Result[V any] struct {
	Values  []V
	Metrics gap.Metrics
}

func run[V any](g *graph.Graph, env Env, cfg gap.Config, factory ace.Factory[V], q ace.Query) (*Result[V], error) {
	frags, err := env.Fragments(g)
	if err != nil {
		return nil, err
	}
	res, err := gap.RunSim(frags, factory, q, cfg)
	if err != nil {
		return nil, err
	}
	return &Result[V]{Values: res.Values, Metrics: res.Metrics}, nil
}

// SSSP computes single-source shortest paths (parallelized Dijkstra) from
// src. Unreachable vertices get +Inf.
func SSSP(g *graph.Graph, src graph.VID, env Env, cfg gap.Config) (*Result[float64], error) {
	return run(g, env, cfg, algorithms.NewSSSP(), ace.Query{Source: src})
}

// BFS computes hop distances from src (MaxInt32 when unreachable).
func BFS(g *graph.Graph, src graph.VID, env Env, cfg gap.Config) (*Result[int32], error) {
	return run(g, env, cfg, algorithms.NewBFS(), ace.Query{Source: src})
}

// WCC labels weakly connected components by their minimum vertex id.
func WCC(g *graph.Graph, env Env, cfg gap.Config) (*Result[uint32], error) {
	return run(g, env, cfg, algorithms.NewWCC(), ace.Query{})
}

// Color computes a greedy graph coloring (parallelized Welsh–Powell with id
// priority).
func Color(g *graph.Graph, env Env, cfg gap.Config) (*Result[int32], error) {
	return run(g, env, cfg, algorithms.NewColor(), ace.Query{})
}

// PageRank computes Δ-based accumulative PageRank with pending-delta
// threshold eps (algorithms.DefaultPREps when <= 0).
func PageRank(g *graph.Graph, eps float64, env Env, cfg gap.Config) (*Result[float64], error) {
	return run(g, env, cfg, algorithms.NewPageRank(), ace.Query{Eps: eps})
}

// CoreDecomposition computes the coreness of every vertex (h-index
// iteration).
func CoreDecomposition(g *graph.Graph, env Env, cfg gap.Config) (*Result[int32], error) {
	return run(g, env, cfg, algorithms.NewCore(), ace.Query{})
}

// Simulation computes the graph-simulation relation of the labeled pattern.
func Simulation(g *graph.Graph, pattern *graph.Graph, env Env, cfg gap.Config) (*Result[algorithms.SimSet], error) {
	return run(g, env, cfg, algorithms.NewSim(), ace.Query{Pattern: pattern})
}

// Job runs an application over pre-built fragments and returns only the
// metrics; the benchmark harness drives everything through this type so it
// can be generic over the value types of the programs.
type Job func(frags []*graph.Fragment, q ace.Query, cfg gap.Config) (gap.Metrics, error)

func jobOf[V any](factory ace.Factory[V]) Job {
	return func(frags []*graph.Fragment, q ace.Query, cfg gap.Config) (gap.Metrics, error) {
		res, err := gap.RunSim(frags, factory, q, cfg)
		if err != nil {
			return gap.Metrics{}, err
		}
		return res.Metrics, nil
	}
}

// Apps lists the application names accepted by JobFor, in the paper's
// order.
func Apps() []string { return []string{"sssp", "color", "pr", "core", "sim"} }

// JobFor resolves an application name to a Job. naiveColor selects the
// symmetric greedy coloring used by the vertex-centric competitors.
func JobFor(app string, naiveColor bool) (Job, error) {
	switch app {
	case "sssp":
		return jobOf(algorithms.NewSSSP()), nil
	case "bellman-ford":
		return jobOf(algorithms.NewBellmanFord()), nil
	case "bfs":
		return jobOf(algorithms.NewBFS()), nil
	case "wcc":
		return jobOf(algorithms.NewWCC()), nil
	case "color":
		if naiveColor {
			return jobOf(algorithms.NewNaiveColor()), nil
		}
		return jobOf(algorithms.NewColor()), nil
	case "pr":
		return jobOf(algorithms.NewPageRank()), nil
	case "core":
		return jobOf(algorithms.NewCore()), nil
	case "sim":
		return jobOf(algorithms.NewSim()), nil
	}
	return nil, fmt.Errorf("core: unknown application %q", app)
}
