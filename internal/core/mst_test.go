package core

import (
	"testing"

	"argan/internal/algorithms"
	"argan/internal/graph"
)

func TestParallelMSTMatchesSequential(t *testing.T) {
	g := graph.Uniform(graph.GenConfig{N: 200, M: 800, Directed: false, Seed: 7, MaxW: 50})
	want, wantTotal := algorithms.SeqMST(g)
	for _, workers := range []int{1, 3, 6} {
		env := Env{Workers: workers}
		frags, err := env.Fragments(g)
		if err != nil {
			t.Fatal(err)
		}
		got, gotTotal, rounds, err := MST(g, frags, env.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if rounds < 2 {
			t.Fatalf("suspiciously few Borůvka rounds: %d", rounds)
		}
		if diff := gotTotal - wantTotal; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("n=%d: total %v, want %v", workers, gotTotal, wantTotal)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d edges, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: edge %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}
