package core

import (
	"math"
	"testing"

	"argan/internal/ace"
	"argan/internal/algorithms"
	"argan/internal/gap"
	"argan/internal/graph"
)

func testGraph() *graph.Graph {
	return graph.PowerLaw(graph.GenConfig{N: 400, M: 2400, Directed: true, Seed: 41, MaxW: 12, Labels: 8})
}

func TestEnvDefaults(t *testing.T) {
	var e Env
	frags, err := e.Fragments(testGraph())
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 16 {
		t.Fatalf("default workers = %d, want 16", len(frags))
	}
	cfg := e.DefaultConfig()
	if cfg.Mode != gap.ModeGAP {
		t.Fatal("default mode must be GAP")
	}
}

func TestTypedRunners(t *testing.T) {
	g := testGraph()
	env := Env{Workers: 4}
	cfg := env.DefaultConfig()

	sssp, err := SSSP(g, 0, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range algorithms.SeqSSSP(g, 0) {
		if sssp.Values[v] != d {
			t.Fatalf("sssp[%d] = %v, want %v", v, sssp.Values[v], d)
		}
	}

	bfs, err := BFS(g, 0, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range algorithms.SeqBFS(g, 0) {
		if d >= 0 && bfs.Values[v] != d {
			t.Fatalf("bfs[%d] = %d, want %d", v, bfs.Values[v], d)
		}
	}

	wcc, err := WCC(g, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range algorithms.SeqWCC(g) {
		if wcc.Values[v] != c {
			t.Fatalf("wcc[%d] = %d, want %d", v, wcc.Values[v], c)
		}
	}

	col, err := Color(g, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range algorithms.SeqColor(g) {
		if col.Values[v] != c {
			t.Fatalf("color[%d] = %d, want %d", v, col.Values[v], c)
		}
	}

	pr, err := PageRank(g, 1e-4, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range algorithms.SeqPageRank(g, 1e-4) {
		if math.Abs(pr.Values[v]-r) > 0.02*(r+1) {
			t.Fatalf("pr[%d] = %v, want ~%v", v, pr.Values[v], r)
		}
	}

	gu := graph.PowerLaw(graph.GenConfig{N: 300, M: 2100, Directed: false, Seed: 42})
	cd, err := CoreDecomposition(gu, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range algorithms.SeqCore(gu) {
		if cd.Values[v] != c {
			t.Fatalf("core[%d] = %d, want %d", v, cd.Values[v], c)
		}
	}

	pat := algorithms.RandomPattern(g, 4, 5, 3)
	sim, err := Simulation(g, pat, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v, m := range algorithms.SeqSim(g, pat) {
		if sim.Values[v] != m {
			t.Fatalf("sim[%d] = %b, want %b", v, sim.Values[v], m)
		}
	}
}

func TestJobFor(t *testing.T) {
	g := testGraph()
	env := Env{Workers: 3}
	frags, err := env.Fragments(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range append(Apps(), "bfs", "wcc", "bellman-ford") {
		job, err := JobFor(app, false)
		if err != nil {
			t.Fatal(err)
		}
		q := ace.Query{Source: 0, Eps: 1e-3}
		if app == "sim" {
			q.Pattern = algorithms.RandomPattern(g, 4, 5, 1)
		}
		m, err := job(frags, q, env.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if !m.Converged || m.Updates == 0 {
			t.Fatalf("%s: bad metrics %+v", app, m)
		}
	}
	if _, err := JobFor("nope", false); err == nil {
		t.Fatal("want unknown-app error")
	}
	// The naive color variant is a distinct program.
	j, err := JobFor("color", true)
	if err != nil || j == nil {
		t.Fatal("naive color job missing")
	}
}
