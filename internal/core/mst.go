package core

import (
	"math"
	"sort"

	"argan/internal/ace"
	"argan/internal/algorithms"
	"argan/internal/gap"
	"argan/internal/graph"
)

// MST computes the minimum spanning forest with parallel Borůvka: one ACE
// query per round over the fragments (the component-minimum fixpoint of
// algorithms.NewMSTRound), with hooking and re-labeling performed at the
// coordinator — the GlobalEval half of §II-A. It returns the forest edges
// (sorted by endpoints), the total weight and the number of Borůvka rounds.
func MST(g *graph.Graph, frags []*graph.Fragment, cfg gap.Config) ([]algorithms.MSTEdge, float64, int, error) {
	n := g.NumVertices()
	comp := make([]graph.VID, n)
	for i := range comp {
		comp[i] = graph.VID(i)
	}
	var out []algorithms.MSTEdge
	total := 0.0
	rounds := 0
	for {
		rounds++
		res, err := gap.RunSim(frags, algorithms.NewMSTRound(comp), ace.Query{}, cfg)
		if err != nil {
			return nil, 0, rounds, err
		}
		// GlobalEval: collect each component's agreed minimum edge.
		best := map[graph.VID]algorithms.MSTEdge{}
		for v := 0; v < n; v++ {
			val := res.Values[v]
			if math.IsInf(val.Edge.W, 1) {
				continue
			}
			if b, ok := best[val.Comp]; !ok || algorithms.LessMSTEdge(val.Edge, b) {
				best[val.Comp] = val.Edge
			}
		}
		if len(best) == 0 {
			break
		}
		// Hook the selected edges with a union-find, then relabel every
		// vertex to its new component representative.
		parent := make(map[graph.VID]graph.VID)
		var find func(graph.VID) graph.VID
		find = func(c graph.VID) graph.VID {
			p, ok := parent[c]
			if !ok || p == c {
				return c
			}
			r := find(p)
			parent[c] = r
			return r
		}
		added := false
		comps := make([]graph.VID, 0, len(best))
		for c := range best {
			comps = append(comps, c)
		}
		sort.Slice(comps, func(i, j int) bool { return comps[i] < comps[j] })
		for _, c := range comps {
			e := best[c]
			a, b := find(comp[e.U]), find(comp[e.V])
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			parent[b] = a
			out = append(out, e)
			total += e.W
			added = true
		}
		if !added {
			break
		}
		for v := range comp {
			comp[v] = find(comp[v])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out, total, rounds, nil
}
