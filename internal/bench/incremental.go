package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"argan/internal/ace"
	"argan/internal/algorithms"
	"argan/internal/core"
	"argan/internal/gap"
	"argan/internal/graph"
)

// incWorkers is the live worker count for the incremental experiment; like
// perf, the live driver spawns real goroutines so this stays small.
const incWorkers = 4

// incChurnFrac is the per-round churn: 1% of the arcs are mutated (half
// deleted, half replaced by fresh inserts), matching the acceptance setup.
const incChurnFrac = 0.01

// incRatioTarget is the acceptance bar: re-convergence from the retained
// fixpoint must cost less than this fraction of a full recompute's wall
// clock for PageRank and SSSP.
const incRatioTarget = 0.25

// IncrementalRound is one churn round of one application: the full
// recompute on the new version versus re-convergence from the previous
// version's fixpoint, both best-of-reps, both verified against the
// sequential reference on the new version.
type IncrementalRound struct {
	Version          uint64  `json:"version"`
	ChurnOps         int     `json:"churn_ops"`
	TouchedVertices  int     `json:"touched_vertices"`
	RebuiltFragments int     `json:"rebuilt_fragments"`
	RecomputeMS      float64 `json:"recompute_ms"`
	IncrementalMS    float64 `json:"incremental_ms"`
	Ratio            float64 `json:"ratio"`
	Verified         bool    `json:"verified"`
}

// IncrementalAppResult aggregates one application across the churn chain.
type IncrementalAppResult struct {
	App         string             `json:"app"`
	ColdMS      float64            `json:"cold_ms"`
	Rounds      []IncrementalRound `json:"rounds"`
	MeanRatio   float64            `json:"mean_ratio"`
	RatioTarget float64            `json:"ratio_target"`
	// Enforced marks the apps whose MeanRatio is an acceptance bar
	// (PageRank and SSSP); the others are reported for the record.
	Enforced bool `json:"enforced"`
	RatioMet bool `json:"ratio_met"`
}

// IncrementalReport is the machine-readable result, written to
// Options.JSONPath (BENCH_incremental.json in CI).
type IncrementalReport struct {
	Experiment string  `json:"experiment"`
	Vertices   int     `json:"vertices"`
	Arcs       int     `json:"arcs"`
	Workers    int     `json:"workers"`
	ChurnFrac  float64 `json:"churn_frac"`
	Rounds     int     `json:"rounds"`
	Reps       int     `json:"reps"`

	Apps []IncrementalAppResult `json:"apps"`
}

// incVersion is one version of the evolving benchmark graph: the frozen
// graph, its COW-updated fragments, and the batch that produced it.
type incVersion struct {
	g        *graph.Graph
	frags    []*graph.Fragment
	touched  []graph.VID
	rebuilt  int
	churnOps int
}

// incChurn draws a deterministic 1%-churn batch against g: half the budget
// deletes existing arcs, half inserts fresh ones.
func incChurn(g *graph.Graph, frac float64, seed int64) graph.MutationBatch {
	r := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for v := 0; v < g.NumVertices(); v++ {
		adj, ws := g.OutNeighbors(graph.VID(v)), g.OutWeights(graph.VID(v))
		for i, u := range adj {
			edges = append(edges, graph.Edge{Src: graph.VID(v), Dst: u, W: ws[i]})
		}
	}
	k := int(float64(len(edges)) * frac / 2)
	if k < 1 {
		k = 1
	}
	var b graph.MutationBatch
	seen := map[[2]graph.VID]bool{}
	for _, i := range r.Perm(len(edges))[:k] {
		e := edges[i]
		if seen[[2]graph.VID{e.Src, e.Dst}] {
			continue
		}
		seen[[2]graph.VID{e.Src, e.Dst}] = true
		b.Deletes = append(b.Deletes, graph.Edge{Src: e.Src, Dst: e.Dst})
	}
	n := g.NumVertices()
	for len(b.Inserts) < k {
		u, v := graph.VID(r.Intn(n)), graph.VID(r.Intn(n))
		if u == v || g.HasEdge(u, v) || seen[[2]graph.VID{u, v}] {
			continue
		}
		seen[[2]graph.VID{u, v}] = true
		b.Inserts = append(b.Inserts, graph.Edge{Src: u, Dst: v, W: float64(1 + r.Intn(9))})
	}
	return b
}

// incVersions builds the evolving chain v0..v_rounds once, shared by every
// application: each step applies one churn batch and COW-updates the
// fragment partitions.
func incVersions(nv, rounds int) ([]incVersion, error) {
	g := graph.PowerLaw(graph.GenConfig{
		N: nv, M: 12 * nv, Directed: true, Alpha: 2.5, Seed: 7, MaxW: 100, Labels: 16,
	})
	env := core.Env{Workers: incWorkers}
	frags, err := env.Fragments(g)
	if err != nil {
		return nil, err
	}
	vs := []incVersion{{g: g, frags: frags}}
	for r := 0; r < rounds; r++ {
		cur := vs[len(vs)-1]
		b := incChurn(cur.g, incChurnFrac, int64(1000+r))
		ng, _, err := cur.g.ApplyMutations(b)
		if err != nil {
			return nil, err
		}
		touched := b.Endpoints()
		nfs, rebuilt, err := graph.UpdateFragments(cur.frags, ng, touched)
		if err != nil {
			return nil, err
		}
		vs = append(vs, incVersion{
			g: ng, frags: nfs, touched: touched,
			rebuilt: len(rebuilt), churnOps: b.Size(),
		})
	}
	return vs, nil
}

// measureIncremental runs one application down the version chain: a cold
// fixpoint on v0, then per round a full recompute and a warm re-convergence
// (planner included in the timed window), both best-of-reps. The warm run's
// answer is verified against the sequential reference on that version, and
// its fixpoint becomes the prior for the next round — so the chain measures
// repeated increments, not one.
func measureIncremental[V any, W any](app string, vs []incVersion, reps int,
	factory ace.Factory[V], q ace.Query, cfg gap.LiveConfig,
	plan func(i int, prior *gap.Result[V]) *ace.WarmState[V],
	ref func(g *graph.Graph) []W, eq func(V, W) bool,
	enforced bool) (IncrementalAppResult, error) {

	ar := IncrementalAppResult{App: app, RatioTarget: incRatioTarget, Enforced: enforced}
	timed := func(run func() (*gap.Result[V], error)) (*gap.Result[V], float64, error) {
		var best float64
		var last *gap.Result[V]
		for k := 0; k < reps; k++ {
			t0 := time.Now()
			res, err := run()
			if err != nil {
				return last, 0, err
			}
			ms := float64(time.Since(t0)) / float64(time.Millisecond)
			if best == 0 || ms < best {
				best = ms
			}
			last = res
		}
		return last, best, nil
	}
	verify := func(got []V, g *graph.Graph) (int, []W) {
		want := ref(g)
		wrong := 0
		for i := range want {
			if !eq(got[i], want[i]) {
				wrong++
			}
		}
		return wrong, want
	}

	prior, cold, err := timed(func() (*gap.Result[V], error) {
		res, _, err := gap.RunLive(vs[0].frags, factory, q, cfg)
		return res, err
	})
	if err != nil {
		return ar, fmt.Errorf("%s cold: %w", app, err)
	}
	ar.ColdMS = cold
	if wrong, _ := verify(prior.Values, vs[0].g); wrong > 0 {
		return ar, fmt.Errorf("%s cold fixpoint diverged: %d wrong", app, wrong)
	}

	var sumRatio float64
	for i := 1; i < len(vs); i++ {
		v := vs[i]
		_, recompute, err := timed(func() (*gap.Result[V], error) {
			res, _, err := gap.RunLive(v.frags, factory, q, cfg)
			return res, err
		})
		if err != nil {
			return ar, fmt.Errorf("%s recompute v%d: %w", app, i, err)
		}
		warm, inc, err := timed(func() (*gap.Result[V], error) {
			wq := q
			wq.Warm = plan(i, prior)
			res, _, err := gap.RunLive(v.frags, factory, wq, cfg)
			return res, err
		})
		if err != nil {
			return ar, fmt.Errorf("%s incremental v%d: %w", app, i, err)
		}
		wrong, _ := verify(warm.Values, v.g)
		round := IncrementalRound{
			Version: v.g.Version(), ChurnOps: v.churnOps,
			TouchedVertices: len(v.touched), RebuiltFragments: v.rebuilt,
			RecomputeMS: recompute, IncrementalMS: inc,
			Ratio: inc / recompute, Verified: wrong == 0,
		}
		ar.Rounds = append(ar.Rounds, round)
		if wrong > 0 {
			return ar, fmt.Errorf("%s increment to v%d diverged from sequential reference: %d wrong", app, i, wrong)
		}
		sumRatio += round.Ratio
		prior = warm
	}
	ar.MeanRatio = sumRatio / float64(len(ar.Rounds))
	ar.RatioMet = ar.MeanRatio < ar.RatioTarget
	return ar, nil
}

// Incremental benchmarks re-convergence over an evolving power-law graph:
// a chain of 1%-churn batches applied through ApplyMutations + COW fragment
// updates, each version solved both from scratch and from the previous
// fixpoint via the per-application warm planners. Every warm answer is
// verified against the sequential reference on its version; the acceptance
// bar is incremental < 25% of recompute wall clock for PageRank and SSSP.
func Incremental(o Options) error {
	o = o.withDefaults()
	nv := int(20000 * o.Scale * 10)
	if nv < 4000 {
		nv = 4000
	}
	reps := o.Queries
	if reps < 3 {
		reps = 3
	}
	const rounds = 3
	vs, err := incVersions(nv, rounds)
	if err != nil {
		return err
	}
	g0 := vs[0].g
	rep := IncrementalReport{
		Experiment: "incremental",
		Vertices:   g0.NumVertices(), Arcs: g0.NumEdges(),
		Workers: incWorkers, ChurnFrac: incChurnFrac,
		Rounds: rounds, Reps: reps,
	}
	cfg := gap.LiveConfig{Mode: gap.ModeGAP, CheckEvery: 64}
	src := pickSource(g0)
	const eps = 1e-3

	fmt.Fprintf(o.Out, "== incremental: re-convergence after %.0f%% churn vs full recompute (power-law |V|=%d, arcs=%d, n=%d, reps=%d) ==\n",
		100*incChurnFrac, g0.NumVertices(), g0.NumEdges(), incWorkers, reps)

	prRes, err := measureIncremental("pr", vs, reps, algorithms.NewPageRank(), ace.Query{Eps: eps}, cfg,
		func(i int, prior *gap.Result[float64]) *ace.WarmState[float64] {
			return algorithms.WarmPageRank(vs[i-1].g, vs[i].g, vs[i].touched, prior.Psi, prior.Values, eps)
		},
		func(g *graph.Graph) []float64 { return algorithms.SeqPageRank(g, eps) },
		func(got, w float64) bool { return math.Abs(got-w) <= 0.02*(w+1) },
		true)
	if err != nil {
		return err
	}
	rep.Apps = append(rep.Apps, prRes)

	ssspRes, err := measureIncremental("sssp", vs, reps, algorithms.NewSSSP(), ace.Query{Source: src}, cfg,
		func(i int, prior *gap.Result[float64]) *ace.WarmState[float64] {
			return algorithms.WarmSSSP(vs[i-1].g, vs[i].g, vs[i].touched, prior.Values, src)
		},
		func(g *graph.Graph) []float64 { return algorithms.SeqSSSP(g, src) },
		func(got, w float64) bool { return got == w },
		true)
	if err != nil {
		return err
	}
	rep.Apps = append(rep.Apps, ssspRes)

	bfsRes, err := measureIncremental("bfs", vs, reps, algorithms.NewBFS(), ace.Query{Source: src}, cfg,
		func(i int, prior *gap.Result[int32]) *ace.WarmState[int32] {
			return algorithms.WarmBFS(vs[i-1].g, vs[i].g, vs[i].touched, prior.Values, src)
		},
		func(g *graph.Graph) []int32 { return algorithms.SeqBFS(g, src) },
		func(got int32, w int32) bool {
			if w < 0 {
				return got == math.MaxInt32
			}
			return got == w
		},
		false)
	if err != nil {
		return err
	}
	rep.Apps = append(rep.Apps, bfsRes)

	wccRes, err := measureIncremental("wcc", vs, reps, algorithms.NewWCC(), ace.Query{}, cfg,
		func(i int, prior *gap.Result[uint32]) *ace.WarmState[uint32] {
			return algorithms.WarmWCC(vs[i-1].g, vs[i].g, vs[i].touched, prior.Values)
		},
		func(g *graph.Graph) []uint32 {
			want := algorithms.SeqWCC(g)
			out := make([]uint32, len(want))
			for i, w := range want {
				out[i] = uint32(w)
			}
			return out
		},
		func(got, w uint32) bool { return got == w },
		false)
	if err != nil {
		return err
	}
	rep.Apps = append(rep.Apps, wccRes)

	fmt.Fprintf(o.Out, "%-6s %10s %12s %14s %8s %8s\n", "app", "cold ms", "recompute ms", "incremental ms", "ratio", "met")
	for _, a := range rep.Apps {
		var rms, ims float64
		for _, r := range a.Rounds {
			rms += r.RecomputeMS
			ims += r.IncrementalMS
		}
		met := "-"
		if a.Enforced {
			met = fmt.Sprintf("%v", a.RatioMet)
		}
		fmt.Fprintf(o.Out, "%-6s %10.1f %12.1f %14.1f %7.1f%% %8s\n",
			a.App, a.ColdMS, rms/float64(len(a.Rounds)), ims/float64(len(a.Rounds)), 100*a.MeanRatio, met)
	}

	if o.JSONPath != "" {
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.JSONPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "wrote %s\n", o.JSONPath)
	}
	for _, a := range rep.Apps {
		if a.Enforced && !a.RatioMet {
			return fmt.Errorf("incremental: %s mean ratio %.1f%% misses the %.0f%% target",
				a.App, 100*a.MeanRatio, 100*incRatioTarget)
		}
	}
	return nil
}
