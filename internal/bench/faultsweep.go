package bench

import (
	"fmt"
	"math"

	"argan/internal/algorithms"
	"argan/internal/core"
	"argan/internal/fault"
	"argan/internal/gap"
	"argan/internal/graph"
)

// FaultSweep measures what failures cost the GAP runtime: SSSP over the LJ
// stand-in, fault-free first (the baseline and the reference answers),
// then under crash-and-recover plans of increasing severity and under
// lossy/duplicating/reordering links. Every faulty run must still reach
// the fault-free fixpoint — the sweep reports the response-time overhead,
// the fault-handling cost T_f (checkpoints + restores), and the recovery
// accounting. All runs use the deterministic sim driver, so the table is
// byte-reproducible.
func FaultSweep(o Options) error {
	o = o.withDefaults()
	g, err := graph.LoadDataset("LJ", o.Scale)
	if err != nil {
		return err
	}
	n := 16
	if o.Workers != nil {
		n = o.Workers[len(o.Workers)-1]
	}
	env := core.Env{Workers: n, Hetero: o.Hetero}
	frags, err := env.Fragments(g)
	if err != nil {
		return err
	}
	q := queryFor("sssp", g, 0)

	baseCfg := env.DefaultConfig()
	base, err := gap.RunSim(frags, algorithms.NewSSSP(), q, baseCfg)
	if err != nil {
		return err
	}
	bm := base.Metrics
	// Crash times as fractions of the fault-free response; restart delay is
	// 5% of it so recovery latency stays in proportion at every scale.
	crashAt := func(frac float64) string {
		return fmt.Sprintf("crash=1@%.0f+%.0f", bm.RespTime*frac, bm.RespTime*0.05+20)
	}
	plans := []struct {
		name string
		spec string
	}{
		{"fault-free", ""},
		{"crash early (10%)", crashAt(0.10)},
		{"crash mid (50%)", crashAt(0.50)},
		{"crash late (80%)", crashAt(0.80)},
		{"two crashes", crashAt(0.25) + "; " + fmt.Sprintf("crash=3@%.0f+%.0f", bm.RespTime*0.6, bm.RespTime*0.05+20)},
		{"drop 5%", "seed=7; drop=0.05"},
		{"dup+reorder 5%", "seed=7; dup=0.05; reorder=0.05"},
		{"full chaos", crashAt(0.4) + "; seed=7; drop=0.03; dup=0.02; reorder=0.02"},
	}

	fmt.Fprintf(o.Out, "== faults: SSSP over LJ (n=%d) — cost of crash recovery and link faults ==\n", n)
	fmt.Fprintf(o.Out, "%-20s %12s %10s %12s %8s %6s %6s %6s\n",
		"plan", "resp", "vs clean", "T_f", "answers", "crash", "recov", "ckpts")
	for _, p := range plans {
		cfg := baseCfg
		if p.spec != "" {
			plan, err := fault.Parse(p.spec)
			if err != nil {
				return fmt.Errorf("faultsweep %q: %v", p.name, err)
			}
			cfg.Faults = plan
			cfg.FT = gap.FTConfig{CheckpointEvery: bm.RespTime / 8}
		}
		res, err := gap.RunSim(frags, algorithms.NewSSSP(), q, cfg)
		if err != nil {
			return err
		}
		m := res.Metrics
		exact := "exact"
		for v := range res.Values {
			if math.Abs(res.Values[v]-base.Values[v]) > 1e-9 {
				exact = "DIFF"
				break
			}
		}
		fmt.Fprintf(o.Out, "%-20s %12.0f %9.2fx %12.0f %8s %6d %6d %6d\n",
			p.name, m.RespTime, m.RespTime/bm.RespTime, m.TotalTf, exact,
			m.Crashes, m.Recoveries, m.Checkpoints)
	}
	return nil
}
