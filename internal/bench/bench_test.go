package bench

import (
	"bytes"
	"strings"
	"testing"

	"argan/internal/graph"
	"argan/internal/obs"
)

func tinyOptions(buf *bytes.Buffer) Options {
	o := Quick(buf)
	o.Scale = 0.05
	o.Workers = []int{4, 8}
	return o
}

// TestAllExperimentsRun executes every table/figure driver at a tiny scale
// and checks each produces its headline rows.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(tinyOptions(&buf)); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if len(out) < 40 {
				t.Fatalf("suspiciously short output:\n%s", out)
			}
			if !strings.Contains(out, "==") {
				t.Fatalf("missing header:\n%s", out)
			}
		})
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("want unknown-experiment error")
	}
	if len(All()) != 23 {
		t.Fatalf("experiment count = %d, want 23 (Table I, Fig 4a-c, Fig 5, Fig 6a-l, ablation, faults, perf, recovery, memory, incremental)", len(All()))
	}
}

func TestFig4bCorrelation(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Workers = []int{8}
	if err := Fig4b(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "correlation coefficient") {
		t.Fatalf("missing correlation line:\n%s", out)
	}
}

func TestFig5MarksNA(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "NA") {
		t.Fatalf("fig5 must mark the oscillating Color runs NA:\n%s", out)
	}
	if !strings.Contains(out, "Argan") || !strings.Contains(out, "Maiter") {
		t.Fatalf("fig5 missing systems:\n%s", out)
	}
}

func TestFig6SweepSummaries(t *testing.T) {
	var buf bytes.Buffer
	e, err := ByID("fig6a")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"avg speedup of Argan", "Grape+", "self-speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig6a output missing %q:\n%s", want, out)
		}
	}
}

func TestPickSourceDeterministicAndReaches(t *testing.T) {
	g, err := graph.LoadDataset("LJ", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	a, b := pickSource(g), pickSource(g)
	if a != b {
		t.Fatalf("source not deterministic: %d vs %d", a, b)
	}
	if int(a) >= g.NumVertices() {
		t.Fatalf("source out of range: %d", a)
	}
}

func TestQueryFor(t *testing.T) {
	g, err := graph.LoadDataset("DP", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	q0 := queryFor("sssp", g, 0)
	q1 := queryFor("sssp", g, 1)
	if q0.Source == q1.Source {
		t.Fatal("repetitions must vary the source")
	}
	if queryFor("pr", g, 0).Eps <= 0 {
		t.Fatal("pr query needs eps")
	}
	if queryFor("sim", g, 0).Pattern == nil {
		t.Fatal("sim query needs a pattern")
	}
}

// TestTraceOptionAttachesRecorders checks that Options.Trace is consulted
// once per trial and that the attached recorders capture events.
func TestTraceOptionAttachesRecorders(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Workers = []int{4}
	recs := map[string]*obs.Recorder{}
	o.Trace = func(trial string) obs.Tracer {
		r := obs.NewRecorder(0, 1<<12)
		recs[trial] = r
		return r
	}
	e, err := ByID("fig6a")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(o); err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("Trace was never called")
	}
	var argan *obs.Recorder
	for trial, r := range recs {
		if strings.HasPrefix(trial, "Argan/") {
			argan = r
		}
	}
	if argan == nil {
		t.Fatalf("no Argan trial traced; trials: %d", len(recs))
	}
	var upd int64
	for _, w := range argan.Snapshot().Workers {
		upd += w.Updates
	}
	if upd == 0 {
		t.Fatal("traced Argan trial recorded no updates")
	}
}
