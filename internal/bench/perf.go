package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"argan/internal/ace"
	"argan/internal/algorithms"
	"argan/internal/core"
	"argan/internal/gap"
	"argan/internal/graph"
	"argan/internal/obs"
	"argan/internal/obs/crit"
)

// perfShards is the intra-worker shard count the perf experiment measures
// (the acceptance bar is IntraParallelism >= 4 at 4 workers).
const perfShards = 4

// perfWorkers is the live worker count; the live driver spawns real
// goroutines, so unlike the sim sweeps this stays small.
const perfWorkers = 4

// PerfConfigResult is one measured live-driver configuration.
type PerfConfigResult struct {
	Name     string    `json:"name"`
	WallMS   []float64 `json:"wall_ms"`
	BestMS   float64   `json:"best_ms"`
	Updates  int64     `json:"updates"`
	MsgsSent int64     `json:"msgs_sent"`
	Batches  int64     `json:"batches"`

	// Attribution maps bucket name (compute, merge, wait, ...) to its
	// fraction of the total worker-time window, measured on one traced
	// rep run after the timed reps so the ring buffer never perturbs the
	// wall-clock numbers. Straggler is that rep's busiest worker.
	Attribution map[string]float64 `json:"attribution,omitempty"`
	Straggler   int                `json:"straggler"`
}

// PerfReport is the machine-readable result of the perf experiment,
// written to Options.JSONPath (BENCH_perf.json in CI).
type PerfReport struct {
	Experiment       string  `json:"experiment"`
	Dataset          string  `json:"dataset"`
	Scale            float64 `json:"scale"`
	Workers          int     `json:"workers"`
	IntraParallelism int     `json:"intra_parallelism"`
	Vertices         int     `json:"vertices"`
	Arcs             int     `json:"arcs"`
	Reps             int     `json:"reps"`

	Configs []PerfConfigResult `json:"configs"`

	// SpeedupPageRankAsync is best legacy-serial wall time over best
	// pooled-parallel wall time for the async live PageRank run; the
	// acceptance bar is SpeedupTarget.
	SpeedupPageRankAsync  float64 `json:"speedup_pagerank_async"`
	SpeedupPooledSerial   float64 `json:"speedup_pooled_serial"`
	SpeedupTarget         float64 `json:"speedup_target"`
	SpeedupMet            bool    `json:"speedup_met"`
	SSSPParallelExact     bool    `json:"sssp_parallel_bit_identical"`
	PageRankBSPInvariant  bool    `json:"pagerank_bsp_shard_invariant"`
	PageRankAsyncMaxRelDp float64 `json:"pagerank_async_max_rel_diff"`
}

// Perf benchmarks the live driver's hot path on the HW stand-in: async
// PageRank under the legacy (pre-pooling, serial) pipeline versus the
// pooled pipeline, serial and sharded. It also re-verifies the semantic
// guarantees the optimizations must preserve — SSSP answers bit-identical
// between serial and sharded async runs, BSP PageRank bit-identical
// across shard counts, and async PageRank within tolerance of the legacy
// baseline. The report is rendered as a table and, when Options.JSONPath
// is set, written as JSON.
func Perf(o Options) error {
	o = o.withDefaults()
	g, err := graph.LoadDataset("HW", o.Scale)
	if err != nil {
		return err
	}
	env := core.Env{Workers: perfWorkers, Hetero: o.Hetero}
	frags, err := env.Fragments(g)
	if err != nil {
		return err
	}
	reps := o.Queries
	if reps < 3 {
		reps = 3
	}
	prq := ace.Query{Eps: 1e-3}

	rep := PerfReport{
		Experiment:       "perf",
		Dataset:          "HW",
		Scale:            o.Scale,
		Workers:          perfWorkers,
		IntraParallelism: perfShards,
		Vertices:         g.NumVertices(),
		Arcs:             g.NumEdges(),
		Reps:             reps,
		SpeedupTarget:    1.5,
	}

	configs := []struct {
		name string
		cfg  gap.LiveConfig
	}{
		{"legacy_serial", gap.LiveConfig{Mode: gap.ModeGAP, LegacyBatches: true, NoCombine: true, IntraParallelism: 1}},
		{"pooled_serial", gap.LiveConfig{Mode: gap.ModeGAP, IntraParallelism: 1}},
		{"pooled_parallel", gap.LiveConfig{Mode: gap.ModeGAP, IntraParallelism: perfShards}},
	}
	fmt.Fprintf(o.Out, "== perf: async live PageRank over HW (|V|=%d, arcs=%d, n=%d, reps=%d) ==\n",
		g.NumVertices(), g.NumEdges(), perfWorkers, reps)
	fmt.Fprintf(o.Out, "%-16s %10s %12s %12s %10s\n", "config", "best ms", "updates", "msgs", "batches")
	values := map[string][]float64{}
	for _, c := range configs {
		r := PerfConfigResult{Name: c.name}
		for k := 0; k < reps; k++ {
			res, lm, err := gap.RunLive(frags, algorithms.NewPageRank(), prq, c.cfg)
			if err != nil {
				return fmt.Errorf("perf %s: %v", c.name, err)
			}
			ms := float64(lm.WallTime) / float64(time.Millisecond)
			r.WallMS = append(r.WallMS, ms)
			if r.BestMS == 0 || ms < r.BestMS {
				r.BestMS = ms
			}
			r.Updates, r.MsgsSent, r.Batches = lm.Updates, lm.MsgsSent, lm.Batches
			values[c.name] = res.Values
		}
		// One extra traced rep attributes the window without contaminating
		// the timed reps above with recorder overhead.
		tcfg := c.cfg
		recorder := obs.NewRecorder(perfWorkers+1, 0)
		tcfg.Tracer = recorder
		if _, _, err := gap.RunLive(frags, algorithms.NewPageRank(), prq, tcfg); err != nil {
			return fmt.Errorf("perf %s (traced): %v", c.name, err)
		}
		ar := crit.Analyze(recorder)
		r.Straggler = ar.Straggler
		if denom := float64(len(ar.Workers)) * ar.Wall; denom > 0 {
			r.Attribution = make(map[string]float64, crit.NumBuckets)
			for i, n := range crit.BucketNames() {
				r.Attribution[n] = ar.Totals[i] / denom
			}
		}
		rep.Configs = append(rep.Configs, r)
		fmt.Fprintf(o.Out, "%-16s %10.1f %12d %12d %10d\n", r.Name, r.BestMS, r.Updates, r.MsgsSent, r.Batches)
		if r.Attribution != nil {
			fmt.Fprintf(o.Out, "%-16s   attribution: compute=%.0f%% merge=%.0f%% wait=%.0f%% (straggler: worker %d)\n",
				"", 100*r.Attribution["compute"], 100*r.Attribution["merge"], 100*r.Attribution["wait"], r.Straggler)
		}
	}
	best := func(name string) float64 {
		for _, c := range rep.Configs {
			if c.Name == name {
				return c.BestMS
			}
		}
		return math.NaN()
	}
	rep.SpeedupPageRankAsync = best("legacy_serial") / best("pooled_parallel")
	rep.SpeedupPooledSerial = best("legacy_serial") / best("pooled_serial")
	rep.SpeedupMet = rep.SpeedupPageRankAsync >= rep.SpeedupTarget
	fmt.Fprintf(o.Out, "speedup vs legacy: %.2fx pooled_parallel (target %.1fx, met=%v), %.2fx pooled_serial\n",
		rep.SpeedupPageRankAsync, rep.SpeedupTarget, rep.SpeedupMet, rep.SpeedupPooledSerial)

	// Async PageRank schedules differ between pop-loop and wave evaluation,
	// so the answers agree only within tolerance; report the worst case.
	a, b := values["legacy_serial"], values["pooled_parallel"]
	for v := range a {
		d := math.Abs(a[v]-b[v]) / math.Max(math.Max(math.Abs(a[v]), math.Abs(b[v])), 1e-12)
		if d > rep.PageRankAsyncMaxRelDp {
			rep.PageRankAsyncMaxRelDp = d
		}
	}
	fmt.Fprintf(o.Out, "async PageRank max rel diff legacy vs sharded: %.3g\n", rep.PageRankAsyncMaxRelDp)

	// SSSP (min-fold) must be bit-identical between the serial and sharded
	// async drivers — any schedule reaches the same fixpoint.
	sq := queryFor("sssp", g, 0)
	ser, _, err := gap.RunLive(frags, algorithms.NewSSSP(), sq, gap.LiveConfig{Mode: gap.ModeGAP, IntraParallelism: 1})
	if err != nil {
		return err
	}
	par, _, err := gap.RunLive(frags, algorithms.NewSSSP(), sq, gap.LiveConfig{Mode: gap.ModeGAP, IntraParallelism: perfShards})
	if err != nil {
		return err
	}
	rep.SSSPParallelExact = true
	for v := range ser.Values {
		if ser.Values[v] != par.Values[v] {
			rep.SSSPParallelExact = false
			break
		}
	}
	fmt.Fprintf(o.Out, "SSSP serial vs sharded bit-identical: %v\n", rep.SSSPParallelExact)

	// BSP is deterministic end to end, so sharded PageRank must be
	// bit-identical across shard counts.
	b2, _, err := gap.RunLiveBSPOpts(frags, algorithms.NewPageRank(), prq, gap.BSPOptions{IntraParallelism: 2})
	if err != nil {
		return err
	}
	b4, _, err := gap.RunLiveBSPOpts(frags, algorithms.NewPageRank(), prq, gap.BSPOptions{IntraParallelism: perfShards})
	if err != nil {
		return err
	}
	rep.PageRankBSPInvariant = true
	for v := range b2.Values {
		if b2.Values[v] != b4.Values[v] {
			rep.PageRankBSPInvariant = false
			break
		}
	}
	fmt.Fprintf(o.Out, "BSP PageRank shard-invariant (2 vs %d shards): %v\n", perfShards, rep.PageRankBSPInvariant)

	if !rep.SSSPParallelExact || !rep.PageRankBSPInvariant {
		return fmt.Errorf("perf: determinism guarantee violated (sssp_exact=%v bsp_invariant=%v)",
			rep.SSSPParallelExact, rep.PageRankBSPInvariant)
	}
	if o.JSONPath != "" {
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.JSONPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "wrote %s\n", o.JSONPath)
	}
	return nil
}
