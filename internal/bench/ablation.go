package bench

import (
	"fmt"

	"argan/internal/algorithms"
	"argan/internal/core"
	"argan/internal/gap"
	"argan/internal/graph"
)

// Ablation quantifies the contribution of each GAP design choice by
// disabling one at a time: rules R1 (eager forwarding to idle workers), R2
// (last-busy-worker ingestion), R3 (the granularity bound) and the
// adaptive tuner (η frozen at its initial value). This is the repository's
// extension of the paper's study — the paper motivates each rule (§II-B,
// Example 3) but does not isolate them.
func Ablation(o Options) error {
	o = o.withDefaults()
	g, err := graph.LoadDataset("LJ", o.Scale)
	if err != nil {
		return err
	}
	n := 16
	if o.Workers != nil {
		n = o.Workers[len(o.Workers)-1]
	}
	env := core.Env{Workers: n, Hetero: o.Hetero}
	frags, err := env.Fragments(g)
	if err != nil {
		return err
	}
	q := queryFor("sssp", g, 0)

	variants := []struct {
		name string
		mut  func(*gap.Config)
	}{
		{"full GAP", func(*gap.Config) {}},
		{"-R1 (no eager fwd)", func(c *gap.Config) { c.DisableR1 = true }},
		{"-R2 (no last-busy ingest)", func(c *gap.Config) { c.DisableR2 = true }},
		{"-R3 (no granularity bound)", func(c *gap.Config) { c.DisableR3 = true }},
		{"-tuner (frozen eta0)", func(c *gap.Config) { c.Adapt = 0; /* PolicyFixed */ c.Eta0 = 1024 }},
		{"-R1-R2-R3", func(c *gap.Config) { c.DisableR1, c.DisableR2, c.DisableR3 = true, true, true }},
	}
	fmt.Fprintf(o.Out, "== ablation: SSSP over LJ (n=%d) — contribution of each GAP mechanism ==\n", n)
	fmt.Fprintf(o.Out, "%-28s %12s %10s %12s %12s %8s\n", "variant", "resp", "vs full", "T_w", "T_c", "rounds")
	var base float64
	for _, v := range variants {
		cfg := env.DefaultConfig()
		v.mut(&cfg)
		res, err := gap.RunSim(frags, algorithms.NewSSSP(), q, cfg)
		if err != nil {
			return err
		}
		m := res.Metrics
		if base == 0 {
			base = m.RespTime
		}
		fmt.Fprintf(o.Out, "%-28s %12.0f %9.2fx %12.0f %12.0f %8d\n",
			v.name, m.RespTime, m.RespTime/base, m.TotalTw, m.TotalTc, m.Rounds)
	}
	return nil
}
