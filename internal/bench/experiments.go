package bench

import (
	"fmt"
	"math"

	"argan/internal/ace"
	"argan/internal/adapt"
	"argan/internal/algorithms"
	"argan/internal/core"
	"argan/internal/gap"
	"argan/internal/graph"
	"argan/internal/systems"
	"argan/internal/ticksim"
)

// Table1 prints the tick-level SSSP traces of the running example under the
// four model combinations, next to the paper's reported totals.
func Table1(o Options) error {
	o = o.withDefaults()
	ex := ticksim.PaperExample()
	fmt.Fprintln(o.Out, "== Table I: SSSP from v1 under different models (reconstructed example) ==")
	paper := map[ticksim.Model]int{ticksim.BSPGC: 19, ticksim.AAPGC: 17, ticksim.APVC: 13, ticksim.GAPACE: 12}
	for _, m := range []ticksim.Model{ticksim.BSPGC, ticksim.AAPGC, ticksim.APVC, ticksim.GAPACE} {
		tr := ticksim.Run(ex, m, 2)
		fmt.Fprint(o.Out, tr.Render())
		fmt.Fprintf(o.Out, "  paper reports %d ticks on its (unavailable) Figure-1 graph\n", paper[m])
	}
	// Example 3's granularity-sensitivity claim: η = 2 is the sweet spot.
	fmt.Fprintf(o.Out, "GAP & ACE under different granularity bounds:")
	for _, eta := range []int{1, 2, 3, 8} {
		fmt.Fprintf(o.Out, "  eta=%d: %d ticks", eta, ticksim.Run(ex, ticksim.GAPACE, eta).Ticks)
	}
	fmt.Fprintln(o.Out)
	return nil
}

// fig4Setup prepares the §VI-A setting: SSSP over the LJ stand-in.
func fig4Setup(o Options) (*graph.Graph, []*graph.Fragment, ace.Query, core.Env, error) {
	g, err := graph.LoadDataset("LJ", o.Scale)
	if err != nil {
		return nil, nil, ace.Query{}, core.Env{}, err
	}
	n := 16
	if o.Workers != nil {
		n = o.Workers[len(o.Workers)-1]
	}
	env := core.Env{Workers: n, Hetero: o.Hetero}
	frags, err := env.Fragments(g)
	if err != nil {
		return nil, nil, ace.Query{}, core.Env{}, err
	}
	return g, frags, ace.Query{Source: pickSource(g)}, env, nil
}

// Fig4a sweeps GAwD's discretization parameter k (paper: flat plateau for
// 4 ≤ k ≤ 10³, a small penalty at k = 2, blow-up beyond 10⁵).
func Fig4a(o Options) error {
	o = o.withDefaults()
	_, frags, q, env, err := fig4Setup(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "== fig4a: SSSP response time vs GAwD parameter k (LJ, n=%d) ==\n", env.Workers)
	fmt.Fprintf(o.Out, "%-12s %14s %14s\n", "k", "resp", "T_a")
	for _, k := range []int{2, 4, 16, 1000, 100000, 10000000} {
		cfg := env.DefaultConfig()
		cfg.K = k
		res, err := gap.RunSim(frags, algorithms.NewSSSP(), q, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "%-12d %14.0f %14.0f\n", k, res.Metrics.RespTime, res.Metrics.TotalTa)
	}
	return nil
}

// Fig4b compares the tuner's staleness estimate (fixpoint substituted by
// x^{2η}, Eq. 6) against the real staleness computed from the precomputed
// fixpoint (Eq. 5), reporting the correlation coefficient.
func Fig4b(o Options) error {
	o = o.withDefaults()
	g, frags, q, env, err := fig4Setup(o)
	if err != nil {
		return err
	}
	truth := algorithms.SeqSSSP(g, q.Source)
	cfg := env.DefaultConfig()
	res, err := gap.RunSimTruth(frags, algorithms.NewSSSP(), q, cfg, truth)
	if err != nil {
		return err
	}
	samples := res.Metrics.TwSamples
	fmt.Fprintf(o.Out, "== fig4b: estimated T_w vs real T_w* (%d samples) ==\n", len(samples))
	under := 0
	var sx, sy, sxx, syy, sxy float64
	for _, s := range samples {
		if s.Est <= s.Real+1e-9 {
			under++
		}
		sx += s.Est
		sy += s.Real
		sxx += s.Est * s.Est
		syy += s.Real * s.Real
		sxy += s.Est * s.Real
	}
	k := float64(len(samples))
	var corr float64
	if k > 1 {
		den := math.Sqrt(k*sxx-sx*sx) * math.Sqrt(k*syy-sy*sy)
		if den > 0 {
			corr = (k*sxy - sx*sy) / den
		}
	}
	for i, s := range samples {
		if i >= 10 {
			fmt.Fprintf(o.Out, "  ... (%d more)\n", len(samples)-10)
			break
		}
		fmt.Fprintf(o.Out, "  est=%12.1f  real=%12.1f\n", s.Est, s.Real)
	}
	fmt.Fprintf(o.Out, "T_w <= T_w* in %d/%d samples; correlation coefficient = %.2f (paper: 0.79)\n",
		under, len(samples), corr)
	return nil
}

// Fig4c prints the response-time composition of GAwD, GA and the fixed
// granularity baselines FG+ (η = ∞) and FG- (η = 0).
func Fig4c(o Options) error {
	o = o.withDefaults()
	_, frags, q, env, err := fig4Setup(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "== fig4c: composition of response time (SSSP, LJ, n=%d) ==\n", env.Workers)
	fmt.Fprintf(o.Out, "%-8s %12s %12s %12s %12s %8s %8s\n", "variant", "resp", "T_w", "T_c", "T_a", "phi", "rounds")
	rows := []struct {
		name string
		cfg  func() gap.Config
	}{
		{"GAwD", func() gap.Config { return env.DefaultConfig() }},
		{"GA", func() gap.Config { c := env.DefaultConfig(); c.Adapt = adapt.PolicyGA; return c }},
		{"FG+", func() gap.Config {
			c := env.Config(gap.ModeGAP, adapt.PolicyFixed)
			c.Eta0 = math.Inf(1)
			return c
		}},
		{"FG-", func() gap.Config { c := env.Config(gap.ModeGAP, adapt.PolicyFixed); c.Eta0 = 0; return c }},
	}
	for _, r := range rows {
		res, err := gap.RunSim(frags, algorithms.NewSSSP(), q, r.cfg())
		if err != nil {
			return err
		}
		m := res.Metrics
		fmt.Fprintf(o.Out, "%-8s %12.0f %12.0f %12.0f %12.0f %7.1f%% %8d\n",
			r.name, m.RespTime, m.TotalTw, m.TotalTc, m.TotalTa, 100*m.Phi, m.Rounds)
	}
	return nil
}

// Fig5 compares every system on every application over the TW stand-in,
// marking non-convergent runs NA as the paper does for Color under
// GraphLab_sync and PowerSwitch.
func Fig5(o Options) error {
	o = o.withDefaults()
	g, err := graph.LoadDataset("TW", o.Scale)
	if err != nil {
		return err
	}
	n := 16
	if o.Workers != nil {
		n = o.Workers[len(o.Workers)-1]
	}
	fmt.Fprintf(o.Out, "== fig5: all systems over TW (|V|=%d, arcs=%d, n=%d) — response time ==\n",
		g.NumVertices(), g.NumEdges(), n)
	fmt.Fprintf(o.Out, "%-16s", "system")
	for _, app := range core.Apps() {
		fmt.Fprintf(o.Out, "%12s", app)
	}
	fmt.Fprintln(o.Out)
	best := map[string]float64{}
	argan := map[string]float64{}
	for _, sys := range systems.All() {
		fmt.Fprintf(o.Out, "%-16s", sys.Name)
		for _, app := range core.Apps() {
			resp, _, ok, err := runPoint(o, sys, app, g, n)
			if err != nil {
				return err
			}
			if !ok {
				fmt.Fprintf(o.Out, "%12s", "NA")
				continue
			}
			fmt.Fprintf(o.Out, "%12.0f", resp)
			if sys.Name == "Argan" {
				argan[app] = resp
			} else if b, has := best[app]; !has || resp < b {
				best[app] = resp
			}
		}
		fmt.Fprintln(o.Out)
	}
	fmt.Fprintf(o.Out, "Argan vs best competitor:")
	for _, app := range core.Apps() {
		if argan[app] > 0 && best[app] > 0 {
			fmt.Fprintf(o.Out, "  %s %.0f%% faster", app, 100*(best[app]-argan[app])/argan[app])
		}
	}
	fmt.Fprintln(o.Out)
	return nil
}

// Fig6l is the scalability study: Argan at fixed n over synthetic
// power-law graphs of growing size |G| = |V| + |E|.
func Fig6l(o Options) error {
	o = o.withDefaults()
	n := 16
	if o.Workers != nil {
		n = o.Workers[len(o.Workers)-1]
	}
	baseV := int(12000 * o.Scale * 10)
	if baseV < 2000 {
		baseV = 2000
	}
	fmt.Fprintf(o.Out, "== fig6l: Argan scalability, n=%d, power-law alpha=2.5, |G| swept x5 ==\n", n)
	fmt.Fprintf(o.Out, "%-12s", "|G|")
	apps := core.Apps()
	for _, app := range apps {
		fmt.Fprintf(o.Out, "%12s", app)
	}
	fmt.Fprintln(o.Out)
	var firstG, lastG int64
	first := map[string]float64{}
	last := map[string]float64{}
	for _, mul := range []int{1, 2, 3, 5} {
		nv := baseV * mul
		g := graph.PowerLaw(graph.GenConfig{
			N: nv, M: 12 * nv, Directed: true, Alpha: 2.5, Seed: 7, MaxW: 100, Labels: 16,
		})
		fmt.Fprintf(o.Out, "%-12d", g.Size())
		for _, app := range apps {
			resp, _, ok, err := runPoint(o, systems.Argan, app, g, n)
			if err != nil {
				return err
			}
			if !ok {
				fmt.Fprintf(o.Out, "%12s", "NA")
				continue
			}
			fmt.Fprintf(o.Out, "%12.0f", resp)
			if mul == 1 {
				first[app] = resp
				firstG = g.Size()
			}
			if mul == 5 {
				last[app] = resp
				lastG = g.Size()
			}
		}
		fmt.Fprintln(o.Out)
	}
	fmt.Fprintf(o.Out, "growth when |G| x%.1f:", float64(lastG)/float64(firstG))
	for _, app := range apps {
		if first[app] > 0 {
			fmt.Fprintf(o.Out, "  %s %.1fx", app, last[app]/first[app])
		}
	}
	fmt.Fprintln(o.Out)
	return nil
}
