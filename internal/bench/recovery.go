package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"argan/internal/ace"
	"argan/internal/algorithms"
	"argan/internal/core"
	"argan/internal/fault"
	"argan/internal/gap"
	"argan/internal/graph"
)

// recWorkers is the live worker count of the recovery experiment.
const recWorkers = 4

// RecoveryModeResult is the measured cost of surviving one mid-run crash
// under one recovery strategy.
type RecoveryModeResult struct {
	Mode          string    `json:"mode"`
	Reps          int       `json:"reps"`
	Updates       []int64   `json:"updates"`
	UpdatesMedian float64   `json:"updates_median"`
	// LostWorkRatio is (median updates - fault-free updates) / fault-free
	// updates: the fraction of the computation redone because of the crash.
	// Global rollback re-executes every worker's post-checkpoint work;
	// localized recovery re-executes only the victim's.
	LostWorkRatio float64   `json:"lost_work_ratio"`
	RecoveryMS    []float64 `json:"recovery_ms"`
	// RecoveryMSMedian is the median detection-to-respawn latency (local
	// mode only; global recoveries park the whole cluster instead and
	// report 0).
	RecoveryMSMedian float64 `json:"recovery_ms_median"`
	EpochsTotal      int64   `json:"epochs_total"`
	ReplayedTotal    int64   `json:"replayed_total"`
	CrashesTotal     int64   `json:"crashes_total"`
}

// RecoveryReport is the machine-readable result of the recovery experiment,
// written to Options.JSONPath (BENCH_recovery.json in CI).
type RecoveryReport struct {
	Experiment string  `json:"experiment"`
	Dataset    string  `json:"dataset"`
	Scale      float64 `json:"scale"`
	Workers    int     `json:"workers"`
	Vertices   int     `json:"vertices"`
	Arcs       int     `json:"arcs"`

	// BaselineUpdates is the fault-free update count U0 the lost-work
	// ratios are measured against (median over reps).
	BaselineUpdates float64 `json:"baseline_updates"`
	// CrashAfterUpdates is the victim's update-count trigger — an
	// update-count trigger (not a wall-clock one) keeps the crash point
	// machine-independent.
	CrashAfterUpdates int64 `json:"crash_after_updates"`

	Modes []RecoveryModeResult `json:"modes"`

	// LocalBeatsGlobal is the acceptance bar: localized recovery must lose
	// strictly less healthy-worker work than global rollback.
	LocalBeatsGlobal bool `json:"local_beats_global"`
}

func medianI64(xs []int64) float64 {
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n == 0 {
		return math.NaN()
	}
	if n%2 == 1 {
		return float64(s[n/2])
	}
	return float64(s[n/2-1]+s[n/2]) / 2
}

func medianF64(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Recovery measures what one mid-run crash costs under global rollback
// versus localized recovery: async live PageRank on the HW stand-in, a
// deterministic update-count-triggered crash of one worker, and the redone
// work (total updates over the fault-free baseline) plus the
// detection-to-respawn latency per strategy. The acceptance bar is that
// localized recovery loses strictly less healthy-worker work than global
// rollback.
func Recovery(o Options) error {
	o = o.withDefaults()
	g, err := graph.LoadDataset("HW", o.Scale)
	if err != nil {
		return err
	}
	env := core.Env{Workers: recWorkers, Hetero: o.Hetero}
	frags, err := env.Fragments(g)
	if err != nil {
		return err
	}
	reps := o.Queries
	if reps < 3 {
		reps = 3
	}
	prq := ace.Query{Eps: 1e-3}
	cfgBase := gap.LiveConfig{
		Mode:            gap.ModeGAP,
		CheckEvery:      16,
		CheckpointEvery: 15 * 1e6, // 15ms: several checkpoints per run
	}

	rep := RecoveryReport{
		Experiment: "recovery",
		Dataset:    "HW",
		Scale:      o.Scale,
		Workers:    recWorkers,
		Vertices:   g.NumVertices(),
		Arcs:       g.NumEdges(),
	}

	// Fault-free baseline: the update count every faulted run is charged
	// against.
	var base []int64
	for k := 0; k < reps; k++ {
		_, lm, err := gap.RunLive(frags, algorithms.NewPageRank(), prq, cfgBase)
		if err != nil {
			return fmt.Errorf("recovery baseline: %v", err)
		}
		base = append(base, lm.Updates)
	}
	rep.BaselineUpdates = medianI64(base)
	// Crash one worker mid-computation: roughly half-way through its share
	// of the baseline updates.
	rep.CrashAfterUpdates = int64(rep.BaselineUpdates / float64(recWorkers) / 2)
	if rep.CrashAfterUpdates < 1 {
		rep.CrashAfterUpdates = 1
	}
	plan := &fault.Plan{Crashes: []fault.Crash{
		{Worker: 1, AfterUpdates: rep.CrashAfterUpdates, Restart: 10},
	}}

	fmt.Fprintf(o.Out, "== recovery: one crash during async live PageRank over HW (|V|=%d, arcs=%d, n=%d, reps=%d) ==\n",
		g.NumVertices(), g.NumEdges(), recWorkers, reps)
	fmt.Fprintf(o.Out, "fault-free updates (median): %.0f; crash: worker 1 after %d updates, restart 10ms\n",
		rep.BaselineUpdates, rep.CrashAfterUpdates)
	fmt.Fprintf(o.Out, "%-8s %14s %12s %12s %8s %10s\n",
		"mode", "updates(med)", "lost-work", "recov ms", "epochs", "replayed")

	for _, mode := range []string{gap.RecoveryGlobal, gap.RecoveryLocal} {
		r := RecoveryModeResult{Mode: mode, Reps: reps}
		for k := 0; k < reps; k++ {
			cfg := cfgBase
			cfg.Recovery = mode
			cfg.Faults = plan
			cfg.HeartbeatTimeout = 40 * 1e6 // 40ms
			_, lm, err := gap.RunLive(frags, algorithms.NewPageRank(), prq, cfg)
			if err != nil {
				return fmt.Errorf("recovery %s rep %d: %v", mode, k, err)
			}
			if lm.Recovery != mode {
				return fmt.Errorf("recovery %s: run fell back to %q", mode, lm.Recovery)
			}
			r.Updates = append(r.Updates, lm.Updates)
			r.RecoveryMS = append(r.RecoveryMS, lm.RecoveryMS)
			r.EpochsTotal += lm.Epochs
			r.ReplayedTotal += lm.Replayed
			r.CrashesTotal += lm.Crashes
		}
		r.UpdatesMedian = medianI64(r.Updates)
		r.LostWorkRatio = (r.UpdatesMedian - rep.BaselineUpdates) / rep.BaselineUpdates
		r.RecoveryMSMedian = medianF64(r.RecoveryMS)
		rep.Modes = append(rep.Modes, r)
		fmt.Fprintf(o.Out, "%-8s %14.0f %11.1f%% %12.2f %8d %10d\n",
			r.Mode, r.UpdatesMedian, 100*r.LostWorkRatio, r.RecoveryMSMedian,
			r.EpochsTotal, r.ReplayedTotal)
	}

	lost := func(mode string) float64 {
		for _, r := range rep.Modes {
			if r.Mode == mode {
				return r.LostWorkRatio
			}
		}
		return math.NaN()
	}
	rep.LocalBeatsGlobal = lost(gap.RecoveryLocal) < lost(gap.RecoveryGlobal)
	fmt.Fprintf(o.Out, "local loses less healthy-worker work than global: %v\n", rep.LocalBeatsGlobal)

	if o.JSONPath != "" {
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.JSONPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "wrote %s\n", o.JSONPath)
	}
	if !rep.LocalBeatsGlobal {
		return fmt.Errorf("recovery: localized recovery lost %.1f%% vs global %.1f%% — local must lose strictly less",
			100*lost(gap.RecoveryLocal), 100*lost(gap.RecoveryGlobal))
	}
	return nil
}
