// Package bench regenerates every table and figure of the paper's
// evaluation (§VI): Table I's execution traces, Fig. 4's granularity-
// adjustment study, Fig. 5's cross-system comparison, and Fig. 6's
// parallel-model/scalability study. Each experiment is addressable by the
// paper's label ("fig6a", ...) and prints the same rows/series the paper
// reports. Absolute numbers are virtual cost units of the simulated
// cluster; the shapes (who wins, by what factor, where crossovers fall) are
// the reproduction target.
package bench

import (
	"fmt"
	"io"

	"argan/internal/ace"
	"argan/internal/algorithms"
	"argan/internal/core"
	"argan/internal/gap"
	"argan/internal/graph"
	"argan/internal/obs"
	"argan/internal/systems"
)

// Options tunes an experiment run.
type Options struct {
	// Out receives the rendered rows (defaults to io.Discard-like noop if
	// nil users pass os.Stdout from the CLI).
	Out io.Writer
	// Scale shrinks the dataset stand-ins further (1 = the default reduced
	// size, see internal/graph). Quick mode uses a small scale so the whole
	// suite runs in seconds.
	Scale float64
	// Workers overrides the per-figure default worker counts (nil keeps
	// them).
	Workers []int
	// Hetero is the execution-noise amplitude of the simulated cluster.
	Hetero float64
	// Queries is the number of query repetitions averaged per point (the
	// paper uses 5).
	Queries int
	// Trace, when non-nil, is called once per measured trial with a label
	// like "Argan/sssp/n=16/rep0" and returns the tracer to attach to that
	// trial's engine run (return nil to leave the trial untraced). Use it
	// to capture per-trial obs.Recorder exports while regenerating a
	// figure.
	Trace func(trial string) obs.Tracer
	// JSONPath, when non-empty, makes experiments with machine-readable
	// results (currently "perf" and "recovery") write them to this file in
	// addition to the rendered rows.
	JSONPath string
}

func (o Options) withDefaults() Options {
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.Scale <= 0 {
		o.Scale = 0.1
	}
	if o.Hetero == 0 {
		o.Hetero = 1.2
	}
	if o.Queries <= 0 {
		o.Queries = 1
	}
	return o
}

// Quick returns the options used by the test suite and root benchmarks:
// small stand-ins, few workers, one query per point.
func Quick(out io.Writer) Options {
	return Options{Out: out, Scale: 0.08, Workers: []int{8, 16, 32}, Queries: 1}
}

// Full returns options close to the paper's setup (slow: minutes).
func Full(out io.Writer) Options {
	return Options{Out: out, Scale: 1, Workers: []int{16, 32, 64, 128}, Queries: 3}
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table I: SSSP traces under BSP/AAP/AP/GAP", Table1},
		{"fig4a", "Fig 4a: GAwD response time vs discretization k", Fig4a},
		{"fig4b", "Fig 4b: estimated T_w vs real T_w*", Fig4b},
		{"fig4c", "Fig 4c: response composition GAwD/GA/FG+/FG-", Fig4c},
		{"fig5", "Fig 5: all systems, all applications (TW)", Fig5},
		{"fig6a", "Fig 6a: SSSP on LJ vs n", figSweep("fig6a", "sssp", "LJ")},
		{"fig6b", "Fig 6b: SSSP on FS vs n", figSweep("fig6b", "sssp", "FS")},
		{"fig6c", "Fig 6c: SSSP on TW vs n", figSweep("fig6c", "sssp", "TW")},
		{"fig6d", "Fig 6d: Color on HW vs n", figSweep("fig6d", "color", "HW")},
		{"fig6e", "Fig 6e: Color on LJ vs n", figSweep("fig6e", "color", "LJ")},
		{"fig6f", "Fig 6f: PR on FS vs n", figSweep("fig6f", "pr", "FS")},
		{"fig6g", "Fig 6g: PR on TW vs n", figSweep("fig6g", "pr", "TW")},
		{"fig6h", "Fig 6h: PR on UK vs n", figSweep("fig6h", "pr", "UK")},
		{"fig6i", "Fig 6i: Core on HW vs n", figSweep("fig6i", "core", "HW")},
		{"fig6j", "Fig 6j: Core on FS vs n", figSweep("fig6j", "core", "FS")},
		{"fig6k", "Fig 6k: Sim on DP vs n", figSweep("fig6k", "sim", "DP")},
		{"fig6l", "Fig 6l: scalability vs |G|", Fig6l},
		{"ablation", "Extension: per-rule ablation of GAP (R1/R2/R3/tuner)", Ablation},
		{"faults", "Extension: crash-recovery and link-fault overhead sweep", FaultSweep},
		{"perf", "Extension: live hot-path baseline (pooled batches, intra-worker shards)", Perf},
		{"recovery", "Extension: lost work and latency, global rollback vs localized recovery", Recovery},
		{"memory", "Extension: wall-clock vs memory cap — spill tier, backpressure, degradation ladder", Memory},
		{"incremental", "Extension: re-convergence after 1% churn vs full recompute (evolving graphs)", Incremental},
	}
}

// ByID resolves an experiment label.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// --- shared plumbing ------------------------------------------------------

var sourceCache = map[*graph.Graph]graph.VID{}

// pickSource returns a deterministic high-coverage SSSP/BFS source,
// mirroring the paper's "each source reaches more than 90% of vertices".
func pickSource(g *graph.Graph) graph.VID {
	if v, ok := sourceCache[g]; ok {
		return v
	}
	best, bestReach := graph.VID(0), -1
	for try := 0; try < 8; try++ {
		v := graph.VID((try * 2654435761) % g.NumVertices())
		reach := 0
		for _, d := range algorithms.SeqBFS(g, v) {
			if d >= 0 {
				reach++
			}
		}
		if reach > bestReach {
			best, bestReach = v, reach
		}
		if reach >= g.NumVertices()*9/10 {
			break
		}
	}
	sourceCache[g] = best
	return best
}

// queryFor builds the per-application query over g.
func queryFor(app string, g *graph.Graph, rep int) ace.Query {
	switch app {
	case "sssp", "bfs", "bellman-ford":
		src := pickSource(g)
		if rep > 0 {
			// Vary the source across repetitions deterministically.
			src = graph.VID((int(src) + rep*7919) % g.NumVertices())
		}
		return ace.Query{Source: src}
	case "pr":
		return ace.Query{Eps: 1e-3}
	case "sim":
		return ace.Query{Pattern: algorithms.RandomPattern(g, 4, 5, int64(42+rep))}
	}
	return ace.Query{}
}

// runPoint measures one (system, app, graph, n) point, averaged over
// repetitions. A non-convergent run (oscillating Color) returns ok=false.
func runPoint(o Options, sys systems.System, app string, g *graph.Graph, n int) (resp float64, m gap.Metrics, ok bool, err error) {
	env := core.Env{Workers: n, Hetero: o.Hetero}
	frags, err := env.Fragments(g)
	if err != nil {
		return 0, m, false, err
	}
	job, err := sys.Job(app)
	if err != nil {
		return 0, m, false, err
	}
	var total float64
	for rep := 0; rep < o.Queries; rep++ {
		q := queryFor(app, g, rep)
		cfg := sys.Config(env.DefaultConfig())
		if o.Trace != nil {
			cfg.Tracer = o.Trace(fmt.Sprintf("%s/%s/n=%d/rep%d", sys.Name, app, n, rep))
		}
		met, err := job(frags, q, cfg)
		if err != nil {
			return 0, m, false, err
		}
		if !met.Converged {
			return 0, met, false, nil
		}
		total += met.RespTime
		m = met
	}
	return total / float64(o.Queries), m, true, nil
}

// figSweep builds a Fig. 6 panel: one application on one dataset, response
// time vs n for the Grape-family systems.
func figSweep(id, app, dataset string) func(Options) error {
	return func(o Options) error {
		o = o.withDefaults()
		g, err := graph.LoadDataset(dataset, o.Scale)
		if err != nil {
			return err
		}
		ns := o.Workers
		if ns == nil {
			ns = []int{16, 32, 64, 128}
		}
		syss := systems.GrapeFamily()
		fmt.Fprintf(o.Out, "== %s: %s over %s (|V|=%d, arcs=%d) — response time vs n ==\n",
			id, app, dataset, g.NumVertices(), g.NumEdges())
		fmt.Fprintf(o.Out, "%-8s", "n")
		for _, s := range syss {
			fmt.Fprintf(o.Out, "%14s", s.Name)
		}
		fmt.Fprintln(o.Out)
		resp := make([][]float64, len(ns)) // [nIdx][sysIdx]; <0 means NA
		for i, n := range ns {
			resp[i] = make([]float64, len(syss))
			fmt.Fprintf(o.Out, "%-8d", n)
			for j, s := range syss {
				r, _, ok, err := runPoint(o, s, app, g, n)
				if err != nil {
					return err
				}
				if !ok {
					resp[i][j] = -1
					fmt.Fprintf(o.Out, "%14s", "NA")
					continue
				}
				resp[i][j] = r
				fmt.Fprintf(o.Out, "%14.0f", r)
			}
			fmt.Fprintln(o.Out)
		}
		// Paper-style summaries: Argan's average speedup over each
		// baseline, and its self-speedup from the smallest to the largest n.
		fmt.Fprintf(o.Out, "avg speedup of Argan:")
		for j := 1; j < len(syss); j++ {
			sum, cnt := 0.0, 0
			for i := range ns {
				if resp[i][0] > 0 && resp[i][j] > 0 {
					sum += resp[i][j] / resp[i][0]
					cnt++
				}
			}
			if cnt > 0 {
				fmt.Fprintf(o.Out, "  %.2fx vs %s", sum/float64(cnt), syss[j].Name)
			}
		}
		fmt.Fprintln(o.Out)
		if first, last := resp[0][0], resp[len(ns)-1][0]; first > 0 && last > 0 {
			fmt.Fprintf(o.Out, "Argan self-speedup n=%d -> n=%d: %.2fx\n", ns[0], ns[len(ns)-1], first/last)
		}
		return nil
	}
}
