package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestFaultSweepRecovers checks the sweep's substance, not just that it
// prints: every faulty plan must reproduce the fault-free answers, and the
// crash plans must actually crash and recover.
func TestFaultSweepRecovers(t *testing.T) {
	var buf bytes.Buffer
	if err := FaultSweep(Quick(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "DIFF") {
		t.Fatalf("a faulty run diverged from the fault-free answers:\n%s", out)
	}
	for _, want := range []string{"crash early", "full chaos", "exact"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}
