package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"argan/internal/ace"
	"argan/internal/algorithms"
	"argan/internal/core"
	"argan/internal/fault"
	"argan/internal/gap"
	"argan/internal/graph"
	"argan/internal/mem"
)

// memWorkers is the live worker count of the memory experiment.
const memWorkers = 4

// MemoryCapResult is one point on the wall-clock-versus-memory-cap curve:
// async live PageRank with one mid-run crash, executed under a governor
// budget of CapBytes.
type MemoryCapResult struct {
	CapBytes int64 `json:"cap_bytes"`
	// CapFrac is CapBytes over the unbounded peak — 0.25 means the run had
	// a quarter of the RAM the ungoverned run actually used.
	CapFrac float64 `json:"cap_frac"`
	Reps    int     `json:"reps"`

	WallMS       []float64 `json:"wall_ms"`
	WallMSMedian float64   `json:"wall_ms_median"`
	// Slowdown is WallMSMedian over the unbounded median — the price of
	// running in CapFrac of the memory.
	Slowdown float64 `json:"slowdown"`

	PeakBytes        int64 `json:"peak_bytes"` // worst accounted peak across reps
	SpilledBytes     int64 `json:"spilled_bytes"`
	ReplayedFromDisk int64 `json:"replayed_from_disk"`
	ForcedCkpts      int64 `json:"forced_ckpts"`
	Throttles        int64 `json:"throttles"`
	EdgeSpills       int64 `json:"edge_spills"`
	LogPeakBytes     int64 `json:"log_peak_bytes"`
	CrashesTotal     int64 `json:"crashes_total"`
	RecoveriesTotal  int64 `json:"recoveries_total"`

	WrongVertices int  `json:"wrong_vertices"`
	Completed     bool `json:"completed"`
}

// MemoryAppResult verifies one application end-to-end at a quarter of its
// own unbounded peak, with a crash in the middle.
type MemoryAppResult struct {
	App           string  `json:"app"`
	UnboundedPeak int64   `json:"unbounded_peak_bytes"`
	CapBytes      int64   `json:"cap_bytes"`
	WallMS        float64 `json:"wall_ms"`
	SpilledBytes  int64   `json:"spilled_bytes"`
	ForcedCkpts   int64   `json:"forced_ckpts"`
	WrongVertices int     `json:"wrong_vertices"`
	Completed     bool    `json:"completed"`
}

// MemoryReport is the machine-readable result of the memory experiment,
// written to Options.JSONPath (BENCH_memory.json in CI).
type MemoryReport struct {
	Experiment string  `json:"experiment"`
	Dataset    string  `json:"dataset"`
	Scale      float64 `json:"scale"`
	Workers    int     `json:"workers"`
	Vertices   int     `json:"vertices"`
	Arcs       int     `json:"arcs"`

	// UnboundedPeakBytes is the governor high-water mark of the ungoverned
	// (budget 0, measure-only) crash run — the caps are fractions of it.
	UnboundedPeakBytes int64   `json:"unbounded_peak_bytes"`
	UnboundedWallMS    float64 `json:"unbounded_wall_ms"`
	CrashAfterUpdates  int64   `json:"crash_after_updates"`

	Caps []MemoryCapResult `json:"caps"`
	Apps []MemoryAppResult `json:"apps"`

	// OOMs counts runs aborted by memory exhaustion. The whole point of
	// the governor is that this stays zero at every cap.
	OOMs int `json:"ooms"`
	// CompletedAtQuarterPeak is the acceptance bar: every application
	// finishes bit-correct (PageRank within its tolerance) at a budget at
	// least 4x below its unbounded peak, with zero OOMs.
	CompletedAtQuarterPeak bool `json:"completed_at_quarter_peak"`
	// SpilledReplayObserved records that at least one capped run replayed
	// messages out of spilled log entries after its crash.
	SpilledReplayObserved bool `json:"spilled_replay_observed"`
}

// memRunOnce executes one live run and counts wrong vertices against the
// sequential reference.
func memRunOnce[V any, W any](frags []*graph.Fragment, f ace.Factory[V], q ace.Query,
	cfg gap.LiveConfig, want []W, eq func(got V, w W) bool) (*gap.LiveMetrics, int, error) {
	res, lm, err := gap.RunLive(frags, f, q, cfg)
	if err != nil {
		return nil, 0, err
	}
	wrong := 0
	for v := range want {
		if !eq(res.Values[v], want[v]) {
			wrong++
		}
	}
	return lm, wrong, nil
}

// memUnspill returns the fragments' edge payloads to RAM after a governed
// run. Fragments are shared across runs, so a StageStream run must not leak
// its spilled state into the next one.
func memUnspill(frags []*graph.Fragment) error {
	for _, f := range frags {
		if _, err := f.UnspillEdges(); err != nil {
			return err
		}
	}
	return nil
}

// Memory measures graceful degradation under a shrinking memory budget:
// async live PageRank with one mid-run crash and localized recovery, first
// ungoverned (budget 0: accounting only) to find the true peak, then at
// 1/2, 1/4 and 1/8 of that peak with the full ladder armed — spillable
// logs and checkpoints, forced early checkpoints, sender backpressure and
// streamed edge partitions. Every capped run must still converge to the
// reference answer; the report is the wall-clock-versus-cap curve plus a
// per-application verification at a quarter of each app's own peak.
func Memory(o Options) error {
	o = o.withDefaults()
	g, err := graph.LoadDataset("HW", o.Scale)
	if err != nil {
		return err
	}
	env := core.Env{Workers: memWorkers, Hetero: o.Hetero}
	frags, err := env.Fragments(g)
	if err != nil {
		return err
	}
	spillDir, err := os.MkdirTemp("", "arganbench-mem-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(spillDir)

	reps := o.Queries
	if reps < 3 {
		reps = 3
	}
	prq := ace.Query{Eps: 1e-3}
	wantPR := algorithms.SeqPageRank(g, prq.Eps)
	prEq := func(got, w float64) bool { return math.Abs(got-w) <= 0.02*(w+1) }
	cfgBase := gap.LiveConfig{
		Mode:             gap.ModeGAP,
		Recovery:         gap.RecoveryLocal,
		CheckEvery:       16,
		CheckpointEvery:  15 * 1e6, // 15ms: several checkpoints per run
		HeartbeatTimeout: 40 * 1e6,
	}

	rep := MemoryReport{
		Experiment: "memory",
		Dataset:    "HW",
		Scale:      o.Scale,
		Workers:    memWorkers,
		Vertices:   g.NumVertices(),
		Arcs:       g.NumEdges(),
	}

	fmt.Fprintf(o.Out, "== memory: live PageRank + one crash under shrinking budgets (|V|=%d, arcs=%d, n=%d, reps=%d) ==\n",
		g.NumVertices(), g.NumEdges(), memWorkers, reps)

	// Derive the crash trigger from one fault-free run: roughly half-way
	// through the victim's share of the updates.
	{
		lm, wrong, err := memRunOnce(frags, algorithms.NewPageRank(), prq, cfgBase, wantPR, prEq)
		if err != nil {
			return fmt.Errorf("memory fault-free probe: %v", err)
		}
		if wrong > 0 {
			return fmt.Errorf("memory fault-free probe: %d wrong vertices", wrong)
		}
		rep.CrashAfterUpdates = lm.Updates / memWorkers / 2
		if rep.CrashAfterUpdates < 1 {
			rep.CrashAfterUpdates = 1
		}
	}
	plan := &fault.Plan{Crashes: []fault.Crash{
		{Worker: 1, AfterUpdates: rep.CrashAfterUpdates, Restart: 10},
	}}

	// Ungoverned pass, crash armed: a budget-0 governor accounts every
	// structure but never sheds, so its Peak is what the crashed run really
	// needs — the caps below are fractions of it, and its wall clock is the
	// denominator of the slowdown column (same workload, only the budget
	// differs).
	var wallU []float64
	for k := 0; k < reps; k++ {
		gov := mem.NewGovernor(0, spillDir)
		cfg := cfgBase
		cfg.Mem = gov
		p := *plan
		p.Seed = int64(k)
		cfg.Faults = &p
		lm, wrong, err := memRunOnce(frags, algorithms.NewPageRank(), prq, cfg, wantPR, prEq)
		gov.Close()
		if err != nil {
			return fmt.Errorf("memory ungoverned rep %d: %v", k, err)
		}
		if wrong > 0 {
			return fmt.Errorf("memory ungoverned rep %d: %d wrong vertices", k, wrong)
		}
		if lm.MemPeakBytes > rep.UnboundedPeakBytes {
			rep.UnboundedPeakBytes = lm.MemPeakBytes
		}
		wallU = append(wallU, float64(lm.WallTime)/1e6)
	}
	rep.UnboundedWallMS = medianF64(wallU)
	fmt.Fprintf(o.Out, "unbounded peak %d bytes, wall %.1fms (median); crash: worker 1 after %d updates, restart 10ms\n",
		rep.UnboundedPeakBytes, rep.UnboundedWallMS, rep.CrashAfterUpdates)
	fmt.Fprintf(o.Out, "%-8s %12s %10s %9s %10s %8s %9s %9s %7s\n",
		"cap", "bytes", "wall(med)", "slowdown", "spilled", "forced", "throttle", "edgespill", "wrong")

	for _, frac := range []float64{0.5, 0.25, 0.125} {
		cap := int64(float64(rep.UnboundedPeakBytes) * frac)
		if cap < 1 {
			cap = 1
		}
		r := MemoryCapResult{CapBytes: cap, CapFrac: frac, Reps: reps, Completed: true}
		for k := 0; k < reps; k++ {
			gov := mem.NewGovernor(cap, spillDir)
			cfg := cfgBase
			cfg.Mem = gov
			p := *plan
			p.Seed = int64(k)
			cfg.Faults = &p
			lm, wrong, err := memRunOnce(frags, algorithms.NewPageRank(), prq, cfg, wantPR, prEq)
			gov.Close()
			if err != nil {
				return fmt.Errorf("memory cap %.3f rep %d: %v", frac, k, err)
			}
			if err := memUnspill(frags); err != nil {
				return err
			}
			r.WallMS = append(r.WallMS, float64(lm.WallTime)/1e6)
			if lm.MemPeakBytes > r.PeakBytes {
				r.PeakBytes = lm.MemPeakBytes
			}
			r.SpilledBytes += lm.SpilledBytes
			r.ReplayedFromDisk += lm.ReplayedFromDisk
			r.ForcedCkpts += lm.ForcedCkpts
			r.Throttles += lm.Throttles
			r.EdgeSpills += lm.EdgeSpills
			if lm.LogPeakBytes > r.LogPeakBytes {
				r.LogPeakBytes = lm.LogPeakBytes
			}
			r.CrashesTotal += lm.Crashes
			r.RecoveriesTotal += lm.Recoveries
			r.WrongVertices += wrong
		}
		r.WallMSMedian = medianF64(r.WallMS)
		if rep.UnboundedWallMS > 0 {
			r.Slowdown = r.WallMSMedian / rep.UnboundedWallMS
		}
		if r.ReplayedFromDisk > 0 {
			rep.SpilledReplayObserved = true
		}
		rep.Caps = append(rep.Caps, r)
		fmt.Fprintf(o.Out, "%-8.3f %12d %9.1fms %8.2fx %10d %8d %9d %9d %7d\n",
			frac, cap, r.WallMSMedian, r.Slowdown, r.SpilledBytes,
			r.ForcedCkpts, r.Throttles, r.EdgeSpills, r.WrongVertices)
	}

	// Per-application verification: each live app at a quarter of its own
	// ungoverned peak, with the crash plan armed.
	type appCase struct {
		name string
		run  func(cfg gap.LiveConfig) (*gap.LiveMetrics, int, error)
	}
	q := ace.Query{Source: 0, Eps: prq.Eps}
	wantSSSP := algorithms.SeqSSSP(g, 0)
	wantBFS := algorithms.SeqBFS(g, 0)
	wantWCC := algorithms.SeqWCC(g)
	apps := []appCase{
		{"sssp", func(cfg gap.LiveConfig) (*gap.LiveMetrics, int, error) {
			return memRunOnce(frags, algorithms.NewSSSP(), q, cfg, wantSSSP,
				func(got, w float64) bool { return got == w })
		}},
		{"bfs", func(cfg gap.LiveConfig) (*gap.LiveMetrics, int, error) {
			return memRunOnce(frags, algorithms.NewBFS(), q, cfg, wantBFS,
				func(got, w int32) bool {
					if w < 0 {
						return got == math.MaxInt32
					}
					return got == w
				})
		}},
		{"wcc", func(cfg gap.LiveConfig) (*gap.LiveMetrics, int, error) {
			return memRunOnce(frags, algorithms.NewWCC(), q, cfg, wantWCC,
				func(got, w uint32) bool { return got == w })
		}},
		{"pr", func(cfg gap.LiveConfig) (*gap.LiveMetrics, int, error) {
			return memRunOnce(frags, algorithms.NewPageRank(), prq, cfg, wantPR, prEq)
		}},
	}
	allAppsOK := true
	for _, a := range apps {
		// Measure this app's own unbounded footprint first…
		gov := mem.NewGovernor(0, spillDir)
		cfg := cfgBase
		cfg.Mem = gov
		lm, _, err := a.run(cfg)
		gov.Close()
		if err != nil {
			return fmt.Errorf("memory app %s ungoverned: %v", a.name, err)
		}
		ar := MemoryAppResult{App: a.name, UnboundedPeak: lm.MemPeakBytes}
		ar.CapBytes = ar.UnboundedPeak / 4
		if ar.CapBytes < 1 {
			ar.CapBytes = 1
		}
		after := lm.Updates / memWorkers / 2
		if after < 1 {
			after = 1
		}
		// …then rerun crashed at a quarter of it.
		gov = mem.NewGovernor(ar.CapBytes, spillDir)
		cfg = cfgBase
		cfg.Mem = gov
		cfg.Faults = &fault.Plan{Crashes: []fault.Crash{
			{Worker: 1, AfterUpdates: after, Restart: 10},
		}}
		lm, wrong, err := a.run(cfg)
		gov.Close()
		if err != nil {
			return fmt.Errorf("memory app %s capped: %v", a.name, err)
		}
		if err := memUnspill(frags); err != nil {
			return err
		}
		ar.WallMS = float64(lm.WallTime) / 1e6
		ar.SpilledBytes = lm.SpilledBytes
		ar.ForcedCkpts = lm.ForcedCkpts
		ar.WrongVertices = wrong
		ar.Completed = true
		if wrong > 0 {
			allAppsOK = false
		}
		rep.Apps = append(rep.Apps, ar)
		fmt.Fprintf(o.Out, "app %-4s at peak/4 (%d bytes): wall %.1fms, spilled %d, forced ckpts %d, wrong %d\n",
			a.name, ar.CapBytes, ar.WallMS, ar.SpilledBytes, ar.ForcedCkpts, ar.WrongVertices)
	}

	quarterOK := false
	for _, r := range rep.Caps {
		if r.CapFrac <= 0.25 && r.Completed && r.WrongVertices == 0 {
			quarterOK = true
		}
	}
	rep.CompletedAtQuarterPeak = quarterOK && allAppsOK && rep.OOMs == 0
	fmt.Fprintf(o.Out, "every app correct at >=4x below its unbounded peak, zero OOMs: %v (spilled replay observed: %v)\n",
		rep.CompletedAtQuarterPeak, rep.SpilledReplayObserved)

	if o.JSONPath != "" {
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.JSONPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "wrote %s\n", o.JSONPath)
	}
	if !rep.CompletedAtQuarterPeak {
		return fmt.Errorf("memory: governed execution must complete correctly at a quarter of the unbounded peak with zero OOMs")
	}
	return nil
}
