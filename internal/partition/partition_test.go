package partition

import (
	"testing"
	"testing/quick"

	"argan/internal/graph"
)

func TestHashBalance(t *testing.T) {
	g := graph.Uniform(graph.GenConfig{N: 4000, M: 8000, Directed: true, Seed: 1})
	for _, n := range []int{2, 4, 16, 64} {
		owner := Hash{}.Assign(g, n)
		counts := make([]int, n)
		for _, o := range owner {
			counts[o]++
		}
		per := 4000 / n
		for w, c := range counts {
			if c < per/2 || c > per*2 {
				t.Fatalf("n=%d worker %d has %d vertices (fair %d)", n, w, c, per)
			}
		}
	}
}

func TestRangeContiguity(t *testing.T) {
	g := graph.Chain(100, true)
	owner := Range{}.Assign(g, 4)
	for v := 1; v < 100; v++ {
		if owner[v] < owner[v-1] {
			t.Fatal("range partition not monotone")
		}
	}
	if owner[0] != 0 || owner[99] != 3 {
		t.Fatalf("range endpoints wrong: %d %d", owner[0], owner[99])
	}
}

func TestGreedyReducesReplication(t *testing.T) {
	g := graph.PowerLaw(graph.GenConfig{N: 1500, M: 9000, Directed: false, Seed: 5})
	const n = 8
	fh, err := Partition(g, Hash{}, n)
	if err != nil {
		t.Fatal(err)
	}
	fg, err := Partition(g, Greedy{Seed: 1}, n)
	if err != nil {
		t.Fatal(err)
	}
	hs, gs := Measure(fh), Measure(fg)
	if gs.ReplicationAvg >= hs.ReplicationAvg {
		t.Fatalf("greedy replication %.2f not better than hash %.2f", gs.ReplicationAvg, hs.ReplicationAvg)
	}
	// Greedy must stay reasonably balanced.
	if gs.MaxOwned > 3*gs.MinOwned+10 {
		t.Fatalf("greedy imbalanced: min=%d max=%d", gs.MinOwned, gs.MaxOwned)
	}
}

func TestSkewedCreatesStraggler(t *testing.T) {
	g := graph.Uniform(graph.GenConfig{N: 2000, M: 6000, Directed: true, Seed: 2})
	frags, err := Partition(g, Skewed{Base: Hash{}, Extra: 0.5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if frags[0].NumOwned() < 2*frags[1].NumOwned() {
		t.Fatalf("worker 0 should be overloaded: %d vs %d", frags[0].NumOwned(), frags[1].NumOwned())
	}
}

func TestPartitionErrors(t *testing.T) {
	g := graph.Chain(4, true)
	if _, err := Partition(g, Hash{}, 0); err == nil {
		t.Fatal("want error for 0 workers")
	}
	if _, err := Partition(g, Hash{}, 300); err == nil {
		t.Fatal("want error for >256 workers")
	}
}

// Property: every partitioner produces a total assignment within range, and
// Partition yields fragments whose owned sets cover V exactly once.
func TestAssignmentProperty(t *testing.T) {
	partitioners := []Partitioner{Hash{}, Range{}, Greedy{Seed: 3}}
	f := func(seed int64, wRaw uint8) bool {
		n := int(wRaw%6) + 2
		g := graph.PowerLaw(graph.GenConfig{N: 150, M: 700, Directed: true, Seed: seed})
		for _, p := range partitioners {
			frags, err := Partition(g, p, n)
			if err != nil {
				return false
			}
			total := 0
			for _, fr := range frags {
				total += fr.NumOwned()
			}
			if total != g.NumVertices() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasure(t *testing.T) {
	g := graph.Uniform(graph.GenConfig{N: 800, M: 3000, Directed: true, Seed: 4})
	frags, err := Partition(g, Hash{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := Measure(frags)
	if st.NumWorkers != 4 || st.ReplicationAvg < 1 || st.EdgeImbalance < 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if st.MinOwned > st.MaxOwned || st.MinArcs > st.MaxArcs {
		t.Fatalf("min/max inverted: %+v", st)
	}
}

func TestPartitionerNames(t *testing.T) {
	for _, p := range []Partitioner{Hash{}, Range{}, Greedy{}, Skewed{Base: Hash{}, Extra: 0.1}} {
		if p.Name() == "" {
			t.Fatal("empty partitioner name")
		}
	}
}
