// Package partition assigns graph vertices to workers and measures the
// quality of the assignment. The paper uses XtraPuLP; this package provides
// hash, range and greedy balanced-edge (LDG-style) partitioners, which give
// the balanced fragments with controllable skew the experiments need.
package partition

import (
	"fmt"
	"math/rand"

	"argan/internal/graph"
)

// Partitioner computes an owner assignment: owner[v] is the worker that owns
// global vertex v.
type Partitioner interface {
	// Name identifies the strategy.
	Name() string
	// Assign partitions g into numWorkers parts.
	Assign(g *graph.Graph, numWorkers int) []uint16
}

// Partition runs p and builds the fragments in one call.
func Partition(g *graph.Graph, p Partitioner, numWorkers int) ([]*graph.Fragment, error) {
	if numWorkers < 1 {
		return nil, fmt.Errorf("partition: numWorkers must be >= 1, got %d", numWorkers)
	}
	if numWorkers > 256 {
		return nil, fmt.Errorf("partition: at most 256 workers supported, got %d", numWorkers)
	}
	owner := p.Assign(g, numWorkers)
	return graph.BuildFragments(g, owner, numWorkers)
}

// Hash spreads vertices by a multiplicative hash of their id: balanced vertex
// counts, oblivious to locality. The default strategy for most experiments.
type Hash struct{ Seed uint32 }

// Name implements Partitioner.
func (Hash) Name() string { return "hash" }

// Assign implements Partitioner.
func (h Hash) Assign(g *graph.Graph, numWorkers int) []uint16 {
	owner := make([]uint16, g.NumVertices())
	seed := h.Seed | 1
	for v := range owner {
		x := uint32(v) * 2654435761 * seed
		x ^= x >> 16
		owner[v] = uint16(x % uint32(numWorkers))
	}
	return owner
}

// Range slices the id space into contiguous equal-size blocks: preserves id
// locality (good for grids/roads), can be badly edge-skewed on power-law ids.
type Range struct{}

// Name implements Partitioner.
func (Range) Name() string { return "range" }

// Assign implements Partitioner.
func (Range) Assign(g *graph.Graph, numWorkers int) []uint16 {
	n := g.NumVertices()
	owner := make([]uint16, n)
	per := (n + numWorkers - 1) / numWorkers
	for v := 0; v < n; v++ {
		owner[v] = uint16(v / per)
	}
	return owner
}

// Greedy is an LDG-style streaming partitioner: vertices arrive in random
// order and go to the worker holding most of their already-placed neighbors,
// penalized by the worker's load. It minimizes replication while keeping
// edge balance, standing in for XtraPuLP.
type Greedy struct {
	Seed int64
	// Slack is the allowed per-worker capacity multiplier (default 1.1).
	Slack float64
}

// Name implements Partitioner.
func (Greedy) Name() string { return "greedy" }

// Assign implements Partitioner.
func (p Greedy) Assign(g *graph.Graph, numWorkers int) []uint16 {
	n := g.NumVertices()
	slack := p.Slack
	if slack <= 0 {
		slack = 1.1
	}
	capacity := slack * float64(n) / float64(numWorkers)
	r := rand.New(rand.NewSource(p.Seed + 7))
	order := r.Perm(n)
	owner := make([]uint16, n)
	placed := make([]bool, n)
	load := make([]int, numWorkers)
	score := make([]float64, numWorkers)
	for _, vi := range order {
		v := graph.VID(vi)
		for i := range score {
			score[i] = 0
		}
		count := func(nbrs []graph.VID) {
			for _, u := range nbrs {
				if placed[u] {
					score[owner[u]]++
				}
			}
		}
		count(g.OutNeighbors(v))
		if g.Directed() {
			count(g.InNeighbors(v))
		}
		best, bestScore := 0, -1.0
		for w := 0; w < numWorkers; w++ {
			s := (score[w] + 1) * (1 - float64(load[w])/capacity)
			if s > bestScore {
				best, bestScore = w, s
			}
		}
		owner[v] = uint16(best)
		placed[vi] = true
		load[best]++
	}
	return owner
}

// Skewed wraps another partitioner and reassigns a fraction of vertices to
// worker 0, deliberately creating a straggler; used by the failure-injection
// and straggler experiments.
type Skewed struct {
	Base Partitioner
	// Extra is the fraction of vertices (0..1) moved onto worker 0.
	Extra float64
	Seed  int64
}

// Name implements Partitioner.
func (s Skewed) Name() string { return fmt.Sprintf("skewed(%s,%.2f)", s.Base.Name(), s.Extra) }

// Assign implements Partitioner.
func (s Skewed) Assign(g *graph.Graph, numWorkers int) []uint16 {
	owner := s.Base.Assign(g, numWorkers)
	r := rand.New(rand.NewSource(s.Seed + 13))
	for v := range owner {
		if owner[v] != 0 && r.Float64() < s.Extra {
			owner[v] = 0
		}
	}
	return owner
}

// Stats summarizes a partitioning: balance and replication, the two numbers
// that drive stragglers and communication volume.
type Stats struct {
	NumWorkers     int
	MinOwned       int
	MaxOwned       int
	MinArcs        int
	MaxArcs        int
	TotalGhosts    int
	ReplicationAvg float64 // total local vertices / |V|
	EdgeImbalance  float64 // max arcs / mean arcs
}

// Measure computes Stats over built fragments.
func Measure(frags []*graph.Fragment) Stats {
	st := Stats{NumWorkers: len(frags), MinOwned: 1 << 30, MinArcs: 1 << 30}
	totalArcs, totalLocal, globalN := 0, 0, 0
	for _, f := range frags {
		globalN = f.GlobalVertices()
		if f.NumOwned() < st.MinOwned {
			st.MinOwned = f.NumOwned()
		}
		if f.NumOwned() > st.MaxOwned {
			st.MaxOwned = f.NumOwned()
		}
		if f.NumArcs() < st.MinArcs {
			st.MinArcs = f.NumArcs()
		}
		if f.NumArcs() > st.MaxArcs {
			st.MaxArcs = f.NumArcs()
		}
		st.TotalGhosts += f.NumGhosts()
		totalArcs += f.NumArcs()
		totalLocal += f.NumLocal()
	}
	if globalN > 0 {
		st.ReplicationAvg = float64(totalLocal) / float64(globalN)
	}
	if totalArcs > 0 {
		st.EdgeImbalance = float64(st.MaxArcs) * float64(len(frags)) / float64(totalArcs)
	}
	return st
}
