package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Store lays out durable state under one directory, one subdirectory per
// dataset key ("NAME@SCALE", matching the serve data cache's identity):
//
//	<dir>/<NAME@SCALE>/wal.log    mutation WAL (wal.go)
//	<dir>/<NAME@SCALE>/warm.snap  warm-fixpoint snapshot (snapshot.go)
//
// The WAL is append+fsync; the snapshot is written to a temp file and
// renamed over the old one, so at every instant the directory holds a
// consistent (possibly stale) snapshot and a prefix-valid WAL.
type Store struct {
	dir string
}

const (
	walFile  = "wal.log"
	snapFile = "warm.snap"
)

// OpenStore opens (creating if needed) a state directory.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("durable: state directory must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: state dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the state directory root.
func (s *Store) Dir() string { return s.dir }

func validKey(key string) error {
	if key == "" || strings.ContainsAny(key, "/\\") || key == "." || key == ".." {
		return fmt.Errorf("durable: invalid dataset key %q", key)
	}
	return nil
}

// WALPath returns the log path for a dataset key (the file may not exist).
func (s *Store) WALPath(key string) string { return filepath.Join(s.dir, key, walFile) }

// SnapshotPath returns the snapshot path for a dataset key.
func (s *Store) SnapshotPath(key string) string { return filepath.Join(s.dir, key, snapFile) }

// Keys lists the dataset keys with durable state on disk, sorted, so
// startup recovery is deterministic in its dataset order.
func (s *Store) Keys() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, e := range ents {
		if !e.IsDir() || validKey(e.Name()) != nil {
			continue
		}
		if _, err := os.Stat(s.WALPath(e.Name())); err == nil {
			keys = append(keys, e.Name())
			continue
		}
		if _, err := os.Stat(s.SnapshotPath(e.Name())); err == nil {
			keys = append(keys, e.Name())
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// OpenWAL opens (creating if needed) the dataset's mutation log and returns
// it with the valid records and recovery stats from the open scan.
func (s *Store) OpenWAL(key string) (*WAL, []Record, RecoverStats, error) {
	if err := validKey(key); err != nil {
		return nil, nil, RecoverStats{}, err
	}
	if err := os.MkdirAll(filepath.Join(s.dir, key), 0o755); err != nil {
		return nil, nil, RecoverStats{}, err
	}
	return OpenWAL(s.WALPath(key))
}

// WriteSnapshot persists the dataset's warm cache atomically: encode to a
// temp file in the same directory, fsync, rename over the live snapshot. A
// crash at any point leaves either the old snapshot or the new one, never a
// torn hybrid.
func (s *Store) WriteSnapshot(key string, snap *Snapshot) error {
	if err := validKey(key); err != nil {
		return err
	}
	dir := filepath.Join(s.dir, key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, snapFile+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := snap.Write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), s.SnapshotPath(key))
}

// ReadSnapshot loads the dataset's snapshot. A missing file returns
// (nil, nil); a corrupt one returns an error — the caller discards it and
// recovers cold from the WAL.
func (s *Store) ReadSnapshot(key string) (*Snapshot, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	f, err := os.Open(s.SnapshotPath(key))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}
