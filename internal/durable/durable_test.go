package durable

import (
	"bytes"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"argan/internal/graph"
)

func batchN(n int) graph.MutationBatch {
	var b graph.MutationBatch
	for i := 0; i < n; i++ {
		b.Inserts = append(b.Inserts, graph.Edge{Src: graph.VID(i), Dst: graph.VID(i + 1), W: float64(i) + 0.5})
	}
	b.Deletes = append(b.Deletes, graph.Edge{Src: graph.VID(n), Dst: 0})
	return b
}

func appendRecords(t *testing.T, path string, n int) []Record {
	t.Helper()
	w, recs, stats, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	if len(recs) != 0 || stats.Records != 0 {
		t.Fatalf("fresh WAL has %d records", len(recs))
	}
	for v := 1; v <= n; v++ {
		rec := Record{Version: uint64(v), Fingerprint: uint64(v) * 0x9E3779B97F4A7C15, Batch: batchN(v)}
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append v%d: %v", v, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Reopen to hand back records with their frame offsets populated (only
	// the open scan locates frames), so corruption surgery can aim at them.
	w, out, _, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("reopen for offsets: %v", err)
	}
	w.Close()
	return out
}

func TestWALAppendReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	want := appendRecords(t, path, 3)

	w, recs, stats, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w.Close()
	if stats.Truncated {
		t.Fatalf("clean log reported a truncated tail: %+v", stats)
	}
	if len(recs) != len(want) {
		t.Fatalf("reopen found %d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if rec.Version != want[i].Version || rec.Fingerprint != want[i].Fingerprint {
			t.Fatalf("record %d: got v%d fp %#x, want v%d fp %#x", i, rec.Version, rec.Fingerprint, want[i].Version, want[i].Fingerprint)
		}
		if !reflect.DeepEqual(rec.Batch, want[i].Batch) {
			t.Fatalf("record %d batch mismatch:\n got %+v\nwant %+v", i, rec.Batch, want[i].Batch)
		}
		if rec.End <= rec.Offset || rec.Offset < walHeaderLen {
			t.Fatalf("record %d has bad frame bounds [%d, %d)", i, rec.Offset, rec.End)
		}
	}
	if w.LastVersion() != 3 {
		t.Fatalf("LastVersion = %d, want 3", w.LastVersion())
	}
	// The chain continues across the reopen.
	if err := w.Append(Record{Version: 4, Batch: batchN(1)}); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
}

func TestWALRefusesChainBreaks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(Record{Version: 2, Batch: batchN(1)}); err == nil {
		t.Fatal("append of version 2 onto an empty log succeeded")
	}
	if err := w.Append(Record{Version: 1, Batch: batchN(1)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Version: 3, Batch: batchN(1)}); err == nil {
		t.Fatal("append leaving a version hole succeeded")
	}
}

// TestWALRecoveryTable drives the documented corruption modes byte-by-byte
// and asserts exactly which records survive the reopen scan.
func TestWALRecoveryTable(t *testing.T) {
	cases := []struct {
		name        string
		corrupt     func(t *testing.T, path string, recs []Record)
		wantRecords int
		wantTrunc   bool
	}{
		{"torn-tail-garbage", func(t *testing.T, path string, _ []Record) {
			// A kill -9 mid-append: plausible frame header, torn payload.
			f := mustOpen(t, path)
			defer f.Close()
			frame := []byte{200, 0, 0, 0, 0xAB, 0xCD, 0xEF, 0x01, 1, 2, 3}
			if _, err := f.WriteAt(frame, size(t, f)); err != nil {
				t.Fatal(err)
			}
		}, 3, true},
		{"flipped-payload-byte", func(t *testing.T, path string, recs []Record) {
			f := mustOpen(t, path)
			defer f.Close()
			off := recs[2].Offset + frameLen + 3 // inside the last payload
			flipByteAt(t, f, off)
		}, 2, true},
		{"flipped-crc-byte", func(t *testing.T, path string, recs []Record) {
			f := mustOpen(t, path)
			defer f.Close()
			flipByteAt(t, f, recs[2].Offset+5) // inside the CRC field
		}, 2, true},
		{"zero-length-frame", func(t *testing.T, path string, _ []Record) {
			f := mustOpen(t, path)
			defer f.Close()
			if _, err := f.WriteAt(make([]byte, frameLen), size(t, f)); err != nil {
				t.Fatal(err)
			}
		}, 3, true},
		{"truncated-payload", func(t *testing.T, path string, _ []Record) {
			f := mustOpen(t, path)
			defer f.Close()
			if err := f.Truncate(size(t, f) - 5); err != nil {
				t.Fatal(err)
			}
		}, 2, true},
		{"version-hole-frame", func(t *testing.T, path string, _ []Record) {
			// A CRC-valid record that skips version 4 → 7: the scan must stop
			// at the chain break even though every checksum passes.
			f := mustOpen(t, path)
			defer f.Close()
			payload, err := encodePayload(Record{Version: 7, Batch: batchN(1)})
			if err != nil {
				t.Fatal(err)
			}
			writeFrame(t, f, size(t, f), payload)
		}, 3, true},
		{"bad-header", func(t *testing.T, path string, _ []Record) {
			f := mustOpen(t, path)
			defer f.Close()
			flipByteAt(t, f, 1) // inside the magic
		}, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			recs := appendRecords(t, path, 3)
			tc.corrupt(t, path, recs)

			w, got, stats, err := OpenWAL(path)
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer w.Close()
			if len(got) != tc.wantRecords {
				t.Fatalf("recovered %d records, want %d", len(got), tc.wantRecords)
			}
			if stats.Truncated != tc.wantTrunc {
				t.Fatalf("Truncated = %v, want %v", stats.Truncated, tc.wantTrunc)
			}
			for i, rec := range got {
				if rec.Version != uint64(i+1) {
					t.Fatalf("record %d has version %d", i, rec.Version)
				}
			}
			// Recovery must leave an appendable log continuing the chain.
			if err := w.Append(Record{Version: uint64(tc.wantRecords + 1), Batch: batchN(1)}); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			// And a second open must be clean: the damage was cut, not kept.
			w.Close()
			_, got2, stats2, err := OpenWAL(path)
			if err != nil {
				t.Fatal(err)
			}
			if stats2.Truncated || len(got2) != tc.wantRecords+1 {
				t.Fatalf("second open: %d records truncated=%v, want %d records clean", len(got2), stats2.Truncated, tc.wantRecords+1)
			}
		})
	}
}

func TestWALSemanticTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	appendRecords(t, path, 3)
	w, recs, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	// Reject record 2 (version 2) as replay would on a fingerprint mismatch.
	if err := w.Truncate(recs[1].Offset, recs[0].Version); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if w.LastVersion() != 1 {
		t.Fatalf("LastVersion after truncate = %d, want 1", w.LastVersion())
	}
	w.Close()
	_, got, stats, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || stats.Truncated {
		t.Fatalf("after semantic truncate: %d records truncated=%v, want 1 clean", len(got), stats.Truncated)
	}
}

func mustOpen(t *testing.T, path string) *os.File {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func size(t *testing.T, f *os.File) int64 {
	t.Helper()
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

func flipByteAt(t *testing.T, f *os.File, off int64) {
	t.Helper()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func writeFrame(t *testing.T, f *os.File, off int64, payload []byte) {
	t.Helper()
	frame := make([]byte, frameLen, frameLen+len(payload))
	length, crc := uint32(len(payload)), crc32.ChecksumIEEE(payload)
	frame[0], frame[1], frame[2], frame[3] = byte(length), byte(length>>8), byte(length>>16), byte(length>>24)
	frame[4], frame[5], frame[6], frame[7] = byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24)
	frame = append(frame, payload...)
	if _, err := f.WriteAt(frame, off); err != nil {
		t.Fatal(err)
	}
}

func testSnapshot() *Snapshot {
	return &Snapshot{Entries: []WarmFixpoint{
		{App: "wcc", Source: 0, Eps: 1e-3, Version: 2, Values: []uint32{1, 1, 2}, Psi: []uint32{1, 1, 2}},
		{App: "sssp", Source: 3, Eps: 1e-3, Version: 5, Values: []float64{0, 1.5, 2.5}, Psi: []float64{0, 1.5, 2.5}},
		{App: "bfs", Source: 1, Eps: 1e-3, Version: 5, Values: []int32{1, 0, 2}, Psi: []int32{1, 0, 2}},
	}}
}

func TestSnapshotRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := testSnapshot().Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if len(got.Entries) != 3 {
		t.Fatalf("decoded %d entries, want 3", len(got.Entries))
	}
	// Entries come back sorted by (app, source, eps).
	if got.Entries[0].App != "bfs" || got.Entries[1].App != "sssp" || got.Entries[2].App != "wcc" {
		t.Fatalf("entries not sorted: %s %s %s", got.Entries[0].App, got.Entries[1].App, got.Entries[2].App)
	}
	for _, e := range got.Entries {
		var want WarmFixpoint
		for _, w := range testSnapshot().Entries {
			if w.App == e.App {
				want = w
			}
		}
		if e.Source != want.Source || e.Version != want.Version || e.Eps != want.Eps ||
			!reflect.DeepEqual(e.Values, want.Values) || !reflect.DeepEqual(e.Psi, want.Psi) {
			t.Fatalf("entry %s round-tripped to %+v, want %+v", e.App, e, want)
		}
	}
}

func TestSnapshotSkipsUncarriableEntries(t *testing.T) {
	snap := &Snapshot{Entries: []WarmFixpoint{
		{App: "sssp", Values: []float64{1}, Psi: []float64{1}, Version: 1},
		{App: "odd", Values: []string{"x"}, Psi: []string{"x"}},  // unsupported type
		{App: "mix", Values: []float64{1}, Psi: []int32{1}},      // kind mismatch
		{App: "len", Values: []float64{1, 2}, Psi: []float64{1}}, // length mismatch
	}}
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 1 || got.Entries[0].App != "sssp" {
		t.Fatalf("decoded %+v, want only the sssp entry", got.Entries)
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := testSnapshot().Write(&buf); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	for name, mutate := range map[string]func([]byte) []byte{
		"flipped-byte": func(b []byte) []byte { b = append([]byte(nil), b...); b[len(b)/2] ^= 0x10; return b },
		"bad-magic":    func(b []byte) []byte { b = append([]byte(nil), b...); b[0] ^= 0xFF; return b },
		"truncated":    func(b []byte) []byte { return b[:len(b)-7] },
		"empty":        func([]byte) []byte { return nil },
	} {
		if _, err := ReadSnapshot(bytes.NewReader(mutate(clean))); err == nil {
			t.Errorf("%s snapshot decoded without error", name)
		}
	}
}

func TestStoreLayoutAndKeys(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(""); err == nil {
		t.Fatal("OpenStore(\"\") succeeded")
	}

	w, _, _, err := st.OpenWAL("HW@0.05")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Version: 1, Batch: batchN(1)}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := st.WriteSnapshot("DP@0.25", testSnapshot()); err != nil {
		t.Fatal(err)
	}
	// Foreign junk in the state dir must not surface as a key.
	if err := os.MkdirAll(filepath.Join(dir, "not-a-dataset"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	keys, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"DP@0.25", "HW@0.05"}) {
		t.Fatalf("Keys = %v, want [DP@0.25 HW@0.05] (sorted, junk skipped)", keys)
	}

	snap, err := st.ReadSnapshot("DP@0.25")
	if err != nil || len(snap.Entries) != 3 {
		t.Fatalf("ReadSnapshot: %v (%d entries)", err, len(snap.Entries))
	}
	if snap, err := st.ReadSnapshot("HW@0.05"); err != nil || snap != nil {
		t.Fatalf("missing snapshot: got (%v, %v), want (nil, nil)", snap, err)
	}
	for _, bad := range []string{"", ".", "..", "a/b", `a\b`} {
		if _, err := st.ReadSnapshot(bad); err == nil {
			t.Errorf("key %q accepted", bad)
		}
	}

	// A corrupt snapshot file reads as an error, not silently as data.
	p := st.SnapshotPath("DP@0.25")
	blob, _ := os.ReadFile(p)
	blob[len(blob)-2] ^= 0x01
	if err := os.WriteFile(p, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReadSnapshot("DP@0.25"); err == nil {
		t.Fatal("corrupt snapshot decoded without error")
	}
}
