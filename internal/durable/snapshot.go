package durable

import (
	"bufio"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"sort"

	"argan/internal/graph"
)

// Warm-fixpoint snapshots. One snapshot file holds every retained fixpoint
// of one dataset at the moment of the flush: per query key (app, source,
// eps) the version the fixpoint was computed on plus its value and Ψ
// arrays, serialized through the shared little-endian codec in bounded
// chunks. The file is written atomically (tmp + rename in store.go) and
// carries a trailing CRC over the whole body, so a snapshot is either
// wholly valid or discarded — recovery then proceeds cold from the WAL,
// which remains the source of truth for versions. Snapshots are an
// optimization, never an authority.

const (
	snapMagic  = uint32(0x504E5341) // "ASNP"
	snapFormat = uint32(1)

	// maxSnapshotEntries bounds the declared entry count; the warm cache
	// holds a handful of query keys per dataset, so anything huge is
	// corruption.
	maxSnapshotEntries = 1 << 16
	// maxSnapshotVertices bounds one entry's declared array length.
	maxSnapshotVertices = 1 << 28
)

// Value-array kinds. The concrete element type of a fixpoint is fixed by
// its application (sssp/pr: float64, bfs: int32, wcc: uint32); the kind tag
// lets the decoder rebuild the right dynamic type and lets the recovery
// path reject an entry whose kind contradicts its app.
const (
	KindF64 uint32 = iota
	KindI32
	KindU32
)

// WarmFixpoint is one retained fixpoint as persisted: the query key, the
// version it converged on, and the global-vertex Values/Psi arrays (both
// []float64, []int32 or []uint32, matching the app's value type).
type WarmFixpoint struct {
	App     string
	Source  int32
	Eps     float64
	Version uint64
	Values  any
	Psi     any
}

// Snapshot is the persisted warm cache of one dataset.
type Snapshot struct {
	Entries []WarmFixpoint
}

// KindOf maps a value array to its kind tag. ok is false for types the
// snapshot codec does not carry (an entry with such state is skipped at
// flush, not persisted wrongly).
func KindOf(values any) (kind uint32, n int, ok bool) {
	switch v := values.(type) {
	case []float64:
		return KindF64, len(v), true
	case []int32:
		return KindI32, len(v), true
	case []uint32:
		return KindU32, len(v), true
	}
	return 0, 0, false
}

func writeArr(w io.Writer, values any) error {
	switch v := values.(type) {
	case []float64:
		return graph.WriteSliceLE(w, v)
	case []int32:
		return graph.WriteSliceLE(w, v)
	case []uint32:
		return graph.WriteSliceLE(w, v)
	}
	return fmt.Errorf("durable: unsupported warm value type %T", values)
}

func readArr(r io.Reader, kind uint32, n int, what string) (any, error) {
	switch kind {
	case KindF64:
		return graph.ReadSliceLE[float64](r, n, false, what)
	case KindI32:
		return graph.ReadSliceLE[int32](r, n, false, what)
	case KindU32:
		return graph.ReadSliceLE[uint32](r, n, false, what)
	}
	return nil, fmt.Errorf("durable: %s has unknown kind %d", what, kind)
}

// EncodedBytes estimates the on-disk size of the snapshot, for budgeting
// the flush against the service memory pool before any encoding happens.
func (s *Snapshot) EncodedBytes() int64 {
	total := int64(16) // header + count + trailer CRC
	for _, e := range s.Entries {
		total += int64(4 + len(e.App) + 4 + 8 + 8 + 4 + 4)
		if _, n, ok := KindOf(e.Values); ok {
			width := int64(8)
			if k, _, _ := KindOf(e.Values); k != KindF64 {
				width = 4
			}
			total += 2 * width * int64(n)
		}
	}
	return total
}

// Write serializes the snapshot: header, entry count, entries sorted by
// (app, source, eps), then a CRC32 over everything after the header.
func (s *Snapshot) Write(w io.Writer) error {
	entries := make([]WarmFixpoint, 0, len(s.Entries))
	for _, e := range s.Entries {
		kv, nv, okV := KindOf(e.Values)
		kp, np, okP := KindOf(e.Psi)
		if !okV || !okP || kv != kp || nv != np {
			// A fixpoint whose state the codec cannot carry faithfully is
			// simply not persisted; the next restart recomputes it cold.
			continue
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.App != b.App {
			return a.App < b.App
		}
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		return a.Eps < b.Eps
	})

	bw := bufio.NewWriter(w)
	if err := graph.WriteLE(bw, [2]uint32{snapMagic, snapFormat}); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(bw, crc)
	if err := graph.WriteLE(mw, uint32(len(entries))); err != nil {
		return err
	}
	for _, e := range entries {
		kind, n, _ := KindOf(e.Values)
		app := []byte(e.App)
		if err := graph.WriteLE(mw, uint32(len(app))); err != nil {
			return err
		}
		if _, err := mw.Write(app); err != nil {
			return err
		}
		if err := graph.WriteLE(mw, e.Source); err != nil {
			return err
		}
		if err := graph.WriteLE(mw, e.Version); err != nil {
			return err
		}
		if err := graph.WriteLE(mw, e.Eps); err != nil {
			return err
		}
		if err := graph.WriteLE(mw, [2]uint32{kind, uint32(n)}); err != nil {
			return err
		}
		if err := writeArr(mw, e.Values); err != nil {
			return err
		}
		if err := writeArr(mw, e.Psi); err != nil {
			return err
		}
	}
	if err := graph.WriteLE(bw, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// crcReader tees everything read through a running CRC.
type crcReader struct {
	r io.Reader
	h hash.Hash32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.h.Write(p[:n])
	}
	return n, err
}

// ReadSnapshot decodes a snapshot, verifying the trailing CRC. Any
// corruption — bad magic, truncated arrays, checksum mismatch — returns an
// error; callers discard the snapshot and recover cold.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	var hdr [2]uint32
	if err := graph.ReadLE(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("durable: snapshot header: %w", err)
	}
	if hdr[0] != snapMagic || hdr[1] != snapFormat {
		return nil, fmt.Errorf("durable: snapshot has magic %#x format %d, want %#x format %d", hdr[0], hdr[1], snapMagic, snapFormat)
	}
	cr := &crcReader{r: br, h: crc32.NewIEEE()}
	var count uint32
	if err := graph.ReadLE(cr, &count); err != nil {
		return nil, fmt.Errorf("durable: snapshot entry count: %w", err)
	}
	if count > maxSnapshotEntries {
		return nil, fmt.Errorf("durable: snapshot declares %d entries, above the %d bound", count, maxSnapshotEntries)
	}
	snap := &Snapshot{}
	for i := 0; i < int(count); i++ {
		var appLen uint32
		if err := graph.ReadLE(cr, &appLen); err != nil {
			return nil, fmt.Errorf("durable: snapshot entry %d: %w", i, err)
		}
		if appLen > 64 {
			return nil, fmt.Errorf("durable: snapshot entry %d declares a %d-byte app name", i, appLen)
		}
		app := make([]byte, appLen)
		if _, err := io.ReadFull(cr, app); err != nil {
			return nil, fmt.Errorf("durable: snapshot entry %d app: %w", i, err)
		}
		var e WarmFixpoint
		e.App = string(app)
		if err := graph.ReadLE(cr, &e.Source); err != nil {
			return nil, fmt.Errorf("durable: snapshot entry %d source: %w", i, err)
		}
		if err := graph.ReadLE(cr, &e.Version); err != nil {
			return nil, fmt.Errorf("durable: snapshot entry %d version: %w", i, err)
		}
		if err := graph.ReadLE(cr, &e.Eps); err != nil {
			return nil, fmt.Errorf("durable: snapshot entry %d eps: %w", i, err)
		}
		var kn [2]uint32
		if err := graph.ReadLE(cr, kn[:]); err != nil {
			return nil, fmt.Errorf("durable: snapshot entry %d kind: %w", i, err)
		}
		kind, n := kn[0], int(kn[1])
		if n > maxSnapshotVertices {
			return nil, fmt.Errorf("durable: snapshot entry %d declares %d vertices", i, n)
		}
		var err error
		if e.Values, err = readArr(cr, kind, n, fmt.Sprintf("entry %d values", i)); err != nil {
			return nil, err
		}
		if e.Psi, err = readArr(cr, kind, n, fmt.Sprintf("entry %d psi", i)); err != nil {
			return nil, err
		}
		snap.Entries = append(snap.Entries, e)
	}
	want := cr.h.Sum32()
	var got uint32
	if err := graph.ReadLE(br, &got); err != nil {
		return nil, fmt.Errorf("durable: snapshot trailer: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("durable: snapshot checksum %#x, computed %#x", got, want)
	}
	return snap, nil
}
