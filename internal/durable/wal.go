// Package durable is the crash-durability layer of the resident service:
// a per-dataset append-only write-ahead log of applied mutation batches and
// periodic warm-fixpoint snapshots, both checksummed and torn-write
// tolerant, laid out under one state directory (store.go). A process killed
// with SIGKILL mid-write leaves at worst a torn tail; recovery truncates at
// the first bad record and resumes from the last durable version, so the
// service never serves a version it cannot prove it reached.
package durable

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"argan/internal/graph"
)

const (
	walMagic  = uint32(0x4157414C) // "LAWA" little-endian on disk, read back as magic
	walFormat = uint32(1)

	// walHeaderLen is the file header: magic + format.
	walHeaderLen = 8
	// frameLen prefixes every record: payload length + payload CRC32 (IEEE).
	frameLen = 8

	// MaxRecordBytes bounds one record's payload. A mutation batch is a few
	// edges to a few thousand; a length field past this bound is corruption,
	// not data, and recovery truncates there instead of allocating it.
	MaxRecordBytes = 16 << 20
)

// Record is one committed mutation batch: the version the batch produced,
// the frozen fingerprint of the graph at that version (replay integrity
// check), and the batch itself. Offset/End locate the record's frame in the
// file, so a caller that rejects a record semantically (fingerprint
// mismatch on replay) can truncate the log right before it.
type Record struct {
	Version     uint64
	Fingerprint uint64
	Batch       graph.MutationBatch
	Offset      int64 // file offset of the record's frame
	End         int64 // file offset just past the payload
}

// RecoverStats summarizes one WAL open: how much was replayable and whether
// a corrupt or torn tail had to be cut.
type RecoverStats struct {
	// Records is the count of valid records scanned (frames + payloads).
	Records int `json:"records"`
	// Bytes is the total on-disk size of the valid records.
	Bytes int64 `json:"bytes"`
	// Truncated reports that the scan hit a short, corrupt or out-of-order
	// tail and cut the file back to the last valid record.
	Truncated bool `json:"truncated_tail"`
}

// WAL is one dataset's mutation log. Append is serialized internally; the
// scan happens once at open.
type WAL struct {
	path string

	mu          sync.Mutex
	f           *os.File
	size        int64
	records     int
	lastVersion uint64
}

// encodePayload serializes a record body: version, fingerprint, insert and
// delete counts, then the edges (16 bytes each), all little-endian through
// the shared graph codec.
func encodePayload(rec Record) ([]byte, error) {
	var buf bytes.Buffer
	if err := graph.WriteLE(&buf, [2]uint64{rec.Version, rec.Fingerprint}); err != nil {
		return nil, err
	}
	if err := graph.WriteLE(&buf, [2]uint32{uint32(len(rec.Batch.Inserts)), uint32(len(rec.Batch.Deletes))}); err != nil {
		return nil, err
	}
	if err := graph.WriteLE(&buf, rec.Batch.Inserts); err != nil {
		return nil, err
	}
	if err := graph.WriteLE(&buf, rec.Batch.Deletes); err != nil {
		return nil, err
	}
	if buf.Len() > MaxRecordBytes {
		return nil, fmt.Errorf("durable: record for version %d is %d bytes, above the %d-byte bound", rec.Version, buf.Len(), MaxRecordBytes)
	}
	return buf.Bytes(), nil
}

// edgeBytes is the encoded size of one graph.Edge (two uint32 + float64).
const edgeBytes = 16

func decodePayload(payload []byte) (Record, error) {
	br := bytes.NewReader(payload)
	var hdr struct {
		Version, Fingerprint uint64
		NIns, NDel           uint32
	}
	if err := graph.ReadLE(br, &hdr); err != nil {
		return Record{}, fmt.Errorf("durable: record header: %w", err)
	}
	want := 24 + edgeBytes*(int64(hdr.NIns)+int64(hdr.NDel))
	if int64(len(payload)) != want {
		return Record{}, fmt.Errorf("durable: record declares %d+%d edges needing %d bytes, payload has %d", hdr.NIns, hdr.NDel, want, len(payload))
	}
	rec := Record{Version: hdr.Version, Fingerprint: hdr.Fingerprint}
	rec.Batch.Inserts = make([]graph.Edge, hdr.NIns)
	if err := graph.ReadLE(br, rec.Batch.Inserts); err != nil {
		return Record{}, fmt.Errorf("durable: record inserts: %w", err)
	}
	rec.Batch.Deletes = make([]graph.Edge, hdr.NDel)
	if err := graph.ReadLE(br, rec.Batch.Deletes); err != nil {
		return Record{}, fmt.Errorf("durable: record deletes: %w", err)
	}
	return rec, nil
}

// OpenWAL opens (creating if absent) the log at path and scans it. Every
// frame is validated — length bound, CRC over the payload, decodability,
// and version monotonicity (first record is version 1, each next is +1,
// matching ApplyMutations' version chain from the deterministic base at
// version 0). The scan stops at the first bad frame and truncates the file
// there: a kill -9 mid-append leaves a short or garbage tail, and cutting
// it loses only the one record that was never acknowledged durable.
func OpenWAL(path string) (*WAL, []Record, RecoverStats, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, RecoverStats{}, err
	}
	w := &WAL{path: path, f: f}
	recs, stats, err := w.scan()
	if err != nil {
		f.Close()
		return nil, nil, stats, err
	}
	return w, recs, stats, nil
}

// scan validates the header and every frame, truncating at the first fault.
func (w *WAL) scan() ([]Record, RecoverStats, error) {
	var stats RecoverStats
	fi, err := w.f.Stat()
	if err != nil {
		return nil, stats, err
	}
	size := fi.Size()

	if size < walHeaderLen {
		// Fresh (or torn-before-header) file: write a clean header.
		if size != 0 {
			stats.Truncated = true
		}
		if err := w.reset(); err != nil {
			return nil, stats, err
		}
		return nil, stats, nil
	}
	var hdr [2]uint32
	if err := graph.ReadLE(io.NewSectionReader(w.f, 0, walHeaderLen), hdr[:]); err != nil {
		return nil, stats, err
	}
	if hdr[0] != walMagic || hdr[1] != walFormat {
		// Not our file or a future format: refuse to guess at frames and
		// start the log over. The base dataset is deterministic, so an empty
		// log is always a consistent (if conservative) recovery point.
		stats.Truncated = true
		if err := w.reset(); err != nil {
			return nil, stats, err
		}
		return nil, stats, nil
	}

	var recs []Record
	off := int64(walHeaderLen)
	lastVersion := uint64(0)
	truncate := false
	for off < size {
		var frame [frameLen]byte
		if n, err := w.f.ReadAt(frame[:], off); err != nil || n < frameLen {
			truncate = true // torn frame header
			break
		}
		length := int64(uint32(frame[0]) | uint32(frame[1])<<8 | uint32(frame[2])<<16 | uint32(frame[3])<<24)
		crc := uint32(frame[4]) | uint32(frame[5])<<8 | uint32(frame[6])<<16 | uint32(frame[7])<<24
		if length == 0 || length > MaxRecordBytes || off+frameLen+length > size {
			truncate = true // zero-length, absurd length, or torn payload
			break
		}
		payload := make([]byte, length)
		if _, err := w.f.ReadAt(payload, off+frameLen); err != nil {
			truncate = true
			break
		}
		if crc32.ChecksumIEEE(payload) != crc {
			truncate = true // flipped bits anywhere in the payload
			break
		}
		rec, err := decodePayload(payload)
		if err != nil {
			truncate = true // CRC-valid but undecodable: treat as corrupt
			break
		}
		if rec.Version != lastVersion+1 {
			truncate = true // hole or reorder in the version chain
			break
		}
		rec.Offset = off
		rec.End = off + frameLen + length
		recs = append(recs, rec)
		lastVersion = rec.Version
		off = rec.End
	}
	if truncate || off != size {
		stats.Truncated = true
		if err := w.f.Truncate(off); err != nil {
			return nil, stats, err
		}
		if err := w.f.Sync(); err != nil {
			return nil, stats, err
		}
		size = off
	}
	w.size = size
	w.records = len(recs)
	w.lastVersion = lastVersion
	stats.Records = len(recs)
	stats.Bytes = size - walHeaderLen
	return recs, stats, nil
}

// reset truncates to an empty log with a fresh header.
func (w *WAL) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := graph.WriteLE(&buf, [2]uint32{walMagic, walFormat}); err != nil {
		return err
	}
	if _, err := w.f.WriteAt(buf.Bytes(), 0); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.size = walHeaderLen
	w.records = 0
	w.lastVersion = 0
	return nil
}

// Append writes one record frame and fsyncs before returning, so a caller
// that acknowledges the mutation afterwards never acknowledges state the
// disk does not hold. Versions must continue the chain: the WAL refuses a
// record that would leave a hole, because the hole would silently truncate
// everything after it at the next open.
func (w *WAL) Append(rec Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("durable: wal %s is closed", w.path)
	}
	if rec.Version != w.lastVersion+1 {
		return fmt.Errorf("durable: append version %d breaks the chain at %d", rec.Version, w.lastVersion)
	}
	payload, err := encodePayload(rec)
	if err != nil {
		return err
	}
	frame := make([]byte, frameLen, frameLen+len(payload))
	length := uint32(len(payload))
	crc := crc32.ChecksumIEEE(payload)
	frame[0], frame[1], frame[2], frame[3] = byte(length), byte(length>>8), byte(length>>16), byte(length>>24)
	frame[4], frame[5], frame[6], frame[7] = byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24)
	frame = append(frame, payload...)
	if _, err := w.f.WriteAt(frame, w.size); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.size += int64(len(frame))
	w.records++
	w.lastVersion = rec.Version
	return nil
}

// Truncate cuts the log back to offset off (a Record.Offset from the open
// scan), dropping that record and everything after it. lastVersion is the
// version of the last record kept. Replay uses this when a CRC-valid record
// fails its semantic check — fingerprint mismatch against the replayed
// graph — so the rejected suffix cannot resurrect on the next restart.
func (w *WAL) Truncate(off int64, lastVersion uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("durable: wal %s is closed", w.path)
	}
	if off < walHeaderLen || off > w.size {
		return fmt.Errorf("durable: truncate offset %d outside log [%d, %d]", off, walHeaderLen, w.size)
	}
	if err := w.f.Truncate(off); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.size = off
	w.lastVersion = lastVersion
	return nil
}

// Size returns the current log size in bytes, header included.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// LastVersion returns the version of the last durable record (0 = none).
func (w *WAL) LastVersion() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastVersion
}

// Close closes the underlying file. Appends after Close fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
