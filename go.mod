module argan

go 1.23
