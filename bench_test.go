// Benchmarks regenerating the paper's tables and figures (one benchmark per
// table/figure; the rendered rows go to the benchmark log on -v via
// b.Log-free stdout suppression) plus micro-benchmarks of the engine
// substrate. Run everything with:
//
//	go test -bench=. -benchmem
//
// The full-scale figures are produced by cmd/arganbench (-full).
package argan

import (
	"io"
	"testing"

	"argan/internal/ace"
	"argan/internal/algorithms"
	"argan/internal/bench"
	"argan/internal/core"
	"argan/internal/gap"
	"argan/internal/graph"
	"argan/internal/partition"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	o := bench.Quick(io.Discard)
	o.Scale = 0.05
	o.Workers = []int{4, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(o); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper table/figure.

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig4a(b *testing.B)  { benchExperiment(b, "fig4a") }
func BenchmarkFig4b(b *testing.B)  { benchExperiment(b, "fig4b") }
func BenchmarkFig4c(b *testing.B)  { benchExperiment(b, "fig4c") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6a(b *testing.B)  { benchExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B)  { benchExperiment(b, "fig6b") }
func BenchmarkFig6c(b *testing.B)  { benchExperiment(b, "fig6c") }
func BenchmarkFig6d(b *testing.B)  { benchExperiment(b, "fig6d") }
func BenchmarkFig6e(b *testing.B)  { benchExperiment(b, "fig6e") }
func BenchmarkFig6f(b *testing.B)  { benchExperiment(b, "fig6f") }
func BenchmarkFig6g(b *testing.B)  { benchExperiment(b, "fig6g") }
func BenchmarkFig6h(b *testing.B)  { benchExperiment(b, "fig6h") }
func BenchmarkFig6i(b *testing.B)  { benchExperiment(b, "fig6i") }
func BenchmarkFig6j(b *testing.B)  { benchExperiment(b, "fig6j") }
func BenchmarkFig6k(b *testing.B)  { benchExperiment(b, "fig6k") }
func BenchmarkFig6l(b *testing.B)  { benchExperiment(b, "fig6l") }

// Micro-benchmarks of the substrate.

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	return graph.PowerLaw(graph.GenConfig{N: 10000, M: 140000, Directed: true, Seed: 1, MaxW: 100})
}

func BenchmarkGeneratePowerLaw(b *testing.B) {
	for i := 0; i < b.N; i++ {
		graph.PowerLaw(graph.GenConfig{N: 10000, M: 140000, Directed: true, Seed: int64(i), MaxW: 100})
	}
}

func BenchmarkPartitionHash(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Partition(g, partition.Hash{}, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionGreedy(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Partition(g, partition.Greedy{Seed: 1}, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimEngineSSSP(b *testing.B) {
	g := benchGraph(b)
	frags, err := partition.Partition(g, partition.Hash{}, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := gap.RunSim(frags, algorithms.NewSSSP(), ace.Query{Source: 0},
			gap.Config{Mode: gap.ModeGAP})
		if err != nil || !res.Metrics.Converged {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.NumEdges()), "edges")
}

func BenchmarkLiveEngineSSSP(b *testing.B) {
	g := benchGraph(b)
	frags, err := partition.Partition(g, partition.Hash{}, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gap.RunLive(frags, algorithms.NewSSSP(), ace.Query{Source: 0},
			gap.LiveConfig{Mode: gap.ModeGAP}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeqSSSP(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algorithms.SeqSSSP(g, 0)
	}
}

func BenchmarkSeqPageRank(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algorithms.SeqPageRank(g, 1e-3)
	}
}

func BenchmarkSeqCore(b *testing.B) {
	g := graph.PowerLaw(graph.GenConfig{N: 10000, M: 140000, Directed: false, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algorithms.SeqCore(g)
	}
}

func BenchmarkAblation(b *testing.B) { benchExperiment(b, "ablation") }

func BenchmarkParallelMST(b *testing.B) {
	g := graph.Uniform(graph.GenConfig{N: 3000, M: 12000, Directed: false, Seed: 2, MaxW: 50})
	frags, err := partition.Partition(g, partition.Hash{}, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := core.MST(g, frags, gap.Config{Mode: gap.ModeGAP}); err != nil {
			b.Fatal(err)
		}
	}
}
