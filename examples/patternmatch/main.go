// Patternmatch: graph simulation over a labeled knowledge-base-like graph —
// the paper's Sim application (Category I: no staleness, so every parallel
// model performs similarly; the interest is the answer itself).
package main

import (
	"fmt"
	"math/bits"

	"argan"
)

func main() {
	// A DBpedia-like labeled digraph.
	g := argan.KnowledgeBase(argan.GenConfig{N: 40_000, M: 200_000, Seed: 11, Labels: 24})
	fmt.Printf("knowledge base: %v\n\n", g)

	env := argan.Env{Workers: 8}
	for q := 0; q < 3; q++ {
		// Patterns with |V_Q| = 4, |E_Q| = 5 as in the paper's queries.
		pattern := argan.RandomPattern(g, 4, 5, int64(100+q))
		res, err := argan.Simulation(g, pattern, env, env.DefaultConfig())
		if err != nil {
			panic(err)
		}
		perPattern := make([]int, pattern.NumVertices())
		matched := 0
		for _, mask := range res.Values {
			if mask != 0 {
				matched++
			}
			for mask != 0 {
				q := bits.TrailingZeros64(mask)
				perPattern[q]++
				mask &^= 1 << q
			}
		}
		fmt.Printf("pattern %d: %d/%d vertices simulate something; per pattern vertex:", q, matched, g.NumVertices())
		for pv, c := range perPattern {
			fmt.Printf("  q%d=%d", pv, c)
		}
		fmt.Printf("   (response %.0f, T_w = %.0f as expected for Category I)\n",
			res.Metrics.RespTime, res.Metrics.TotalTw)
	}
}
