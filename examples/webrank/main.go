// Webrank: Δ-based accumulative PageRank (the Maiter formulation the paper
// parallelizes) over a power-law web-like graph, run both under the
// virtual-time engine (for the cost breakdown) and under the live
// goroutine-per-worker driver (real concurrency, wall-clock time).
package main

import (
	"fmt"
	"sort"

	"argan"
)

func main() {
	g := argan.PowerLaw(argan.GenConfig{
		N: 60_000, M: 600_000, Directed: true, Alpha: 2.3, Seed: 3,
	})
	fmt.Printf("web graph: %v\n\n", g)

	// Virtual-time run: deterministic metrics.
	env := argan.Env{Workers: 16}
	res, err := argan.PageRank(g, 1e-3, env, env.DefaultConfig())
	if err != nil {
		panic(err)
	}
	m := res.Metrics
	fmt.Printf("simulated cluster: response=%.0f units, %d updates, phi=%.1f%%\n",
		m.RespTime, m.Updates, 100*m.Phi)

	// Live run: same program, real goroutines and channels.
	live, lm, err := argan.LivePageRank(g, 1e-3, 8, argan.LiveConfig{Mode: argan.ModeGAP})
	if err != nil {
		panic(err)
	}
	fmt.Printf("live driver      : %v wall, %d updates, %d messages in %d batches\n\n",
		lm.WallTime, lm.Updates, lm.MsgsSent, lm.Batches)

	type pair struct {
		v argan.VID
		r float64
	}
	ps := make([]pair, len(live))
	for v, r := range live {
		ps[v] = pair{argan.VID(v), r}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].r > ps[j].r })
	fmt.Println("top pages:")
	for i := 0; i < 10; i++ {
		fmt.Printf("  v%-8d rank %.4f\n", ps[i].v, ps[i].r)
	}
}
