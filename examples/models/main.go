// Models: one query, every parallel model — a miniature of the paper's
// Fig. 6 panels. Runs SSSP, Color and PageRank over a social-network-like
// graph under GAP (Argan), AAP (Grape+), AP (Grape*), BSP (Grape) and the
// fixed-granularity extremes FG+ / FG-, printing the response-time and
// staleness table.
package main

import (
	"fmt"
	"math"

	"argan"
)

func main() {
	g := argan.PowerLaw(argan.GenConfig{
		N: 20_000, M: 280_000, Directed: true, Alpha: 2.5, Seed: 103, MaxW: 100, Labels: 16,
	})
	fmt.Printf("graph: %v\n", g)
	env := argan.Env{Workers: 16, Hetero: 1.2}

	fgPlus := env.Config(argan.ModeGAP, argan.AdaptFixed)
	fgPlus.Eta0 = math.Inf(1)
	fgMinus := env.Config(argan.ModeGAP, argan.AdaptFixed)
	fgMinus.Eta0 = 0

	models := []struct {
		name string
		cfg  argan.Config
	}{
		{"GAP+GAwD", env.DefaultConfig()},
		{"GAP+GA", env.Config(argan.ModeGAP, argan.AdaptGA)},
		{"AAP", env.Config(argan.ModeAAP, argan.AdaptFixed)},
		{"AP-GC", env.Config(argan.ModeAPGC, argan.AdaptFixed)},
		{"BSP", env.Config(argan.ModeBSP, argan.AdaptFixed)},
		{"FG+", fgPlus},
		{"FG-", fgMinus},
	}

	apps := []struct {
		name string
		run  func(cfg argan.Config) (argan.Metrics, error)
	}{
		{"sssp", func(cfg argan.Config) (argan.Metrics, error) {
			r, err := argan.SSSP(g, 0, env, cfg)
			if err != nil {
				return argan.Metrics{}, err
			}
			return r.Metrics, nil
		}},
		{"color", func(cfg argan.Config) (argan.Metrics, error) {
			r, err := argan.Color(g, env, cfg)
			if err != nil {
				return argan.Metrics{}, err
			}
			return r.Metrics, nil
		}},
		{"pr", func(cfg argan.Config) (argan.Metrics, error) {
			r, err := argan.PageRank(g, 1e-3, env, cfg)
			if err != nil {
				return argan.Metrics{}, err
			}
			return r.Metrics, nil
		}},
	}

	for _, app := range apps {
		fmt.Printf("\n-- %s --\n%-10s %12s %10s %12s %12s %8s\n", app.name, "model", "response", "vs GAP", "T_w", "T_c", "phi")
		var base float64
		for _, mo := range models {
			m, err := app.run(mo.cfg)
			if err != nil {
				panic(err)
			}
			if base == 0 {
				base = m.RespTime
			}
			fmt.Printf("%-10s %12.0f %9.2fx %12.0f %12.0f %7.1f%%\n",
				mo.name, m.RespTime, m.RespTime/base, m.TotalTw, m.TotalTc, 100*m.Phi)
		}
	}
}
