// Quickstart: build a small weighted graph, run SSSP under Argan's default
// configuration (GAP parallel model + GAwD granularity adjustment) and read
// both the answer and the engine's cost accounting.
package main

import (
	"fmt"

	"argan"
)

func main() {
	// A toy road map: 8 intersections, weighted two-way streets.
	b := argan.NewBuilder(8, false)
	type road struct {
		a, b argan.VID
		km   float64
	}
	for _, r := range []road{
		{0, 1, 4}, {0, 2, 1}, {2, 1, 2}, {1, 3, 5},
		{2, 3, 8}, {3, 4, 3}, {2, 5, 10}, {4, 5, 2},
		{4, 6, 6}, {5, 7, 4}, {6, 7, 1},
	} {
		b.AddWeighted(r.a, r.b, r.km)
	}
	g := b.MustBuild()

	env := argan.Env{Workers: 4}
	res, err := argan.SSSP(g, 0, env, env.DefaultConfig())
	if err != nil {
		panic(err)
	}

	fmt.Println("shortest distances from intersection 0:")
	for v, d := range res.Values {
		fmt.Printf("  %d -> %.0f km\n", v, d)
	}
	m := res.Metrics
	fmt.Printf("\nengine: %d updates in %d rounds, %d messages\n", m.Updates, m.Rounds, m.MsgsSent)
	fmt.Printf("costs:  response=%.0f  T_w=%.0f  T_c=%.0f  phi=%.1f%%\n",
		m.RespTime, m.TotalTw, m.TotalTc, 100*m.Phi)
}
