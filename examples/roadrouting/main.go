// Roadrouting: single-source shortest paths over a large road-network-like
// grid, comparing the virtual-time engine's parallel models — the scenario
// of the paper's running example (Table I) at scale. Road networks have
// huge diameters, which maximizes the straggler effect of global barriers.
package main

import (
	"fmt"

	"argan"
)

func main() {
	// A 200x200 city grid with random street lengths.
	g := argan.Grid(200, 200, argan.GenConfig{Seed: 7, MaxW: 10})
	fmt.Printf("road network: %v\n\n", g)

	env := argan.Env{Workers: 16, Hetero: 1.2}
	src := argan.VID(0) // north-west corner

	type row struct {
		name string
		cfg  argan.Config
	}
	rows := []row{
		{"Argan (GAP + GAwD)", env.Config(argan.ModeGAP, argan.AdaptGAwD)},
		{"Grape+ (AAP)", env.Config(argan.ModeAAP, argan.AdaptFixed)},
		{"Grape* (AP)", env.Config(argan.ModeAPGC, argan.AdaptFixed)},
		{"Grape (BSP)", env.Config(argan.ModeBSP, argan.AdaptFixed)},
	}
	var baseline float64
	for _, r := range rows {
		res, err := argan.SSSP(g, src, env, r.cfg)
		if err != nil {
			panic(err)
		}
		m := res.Metrics
		if baseline == 0 {
			baseline = m.RespTime
		}
		fmt.Printf("%-20s response %10.0f (%.2fx)   T_w %9.0f   rounds %6d\n",
			r.name, m.RespTime, m.RespTime/baseline, m.TotalTw, m.Rounds)
	}

	// Sanity: the far corner is reachable.
	res, _ := argan.SSSP(g, src, env, env.DefaultConfig())
	far := argan.VID(g.NumVertices() - 1)
	fmt.Printf("\ndistance to the south-east corner: %.0f\n", res.Values[far])
}
