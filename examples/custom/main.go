// Custom: write your own ACE program against the public API — the paper's
// §IV workflow. The algorithm here is single-source *widest path* (maximum
// bottleneck bandwidth): the best path from the source maximizing the
// minimum edge capacity along the way. As a fixpoint it is the max-min
// analogue of SSSP:
//
//	x_v = max over in-edges (u,v) of min(x_u, capacity(u,v))
//
// The aggregate (max) is commutative, associative, idempotent and monotone,
// so the §II-B convergence conditions hold and the engine may run it under
// any granularity and any parallel model. Sequentially the algorithm is
// PAF (a Dijkstra-like widest-path search), in parallel PBF — Category II.
package main

import (
	"fmt"

	"argan"
)

// widest is the user-defined ACE program. The status variable is the
// bottleneck bandwidth from the source (0 = unreached).
type widest struct {
	f *argan.Fragment
}

func newWidest() argan.Factory[float64] {
	return func() argan.Program[float64] { return &widest{} }
}

func (p *widest) Name() string             { return "widest-path" }
func (p *widest) Category() argan.Category { return argan.CategoryII }
func (p *widest) Deps() argan.DepKind      { return argan.DepSelf }

func (p *widest) Setup(f *argan.Fragment, q argan.Query) { p.f = f }

func (p *widest) InitValue(f *argan.Fragment, local uint32, q argan.Query) (float64, bool) {
	if f.Global(local) == q.Source {
		return 1e18, true // the source has unbounded bandwidth to itself
	}
	return 0, false
}

// Update relaxes the out-edges: push min(own bandwidth, edge capacity).
func (p *widest) Update(ctx *argan.Ctx[float64], local uint32) {
	b := ctx.Get(local)
	if b == 0 {
		return
	}
	adj, caps := p.f.OutNeighbors(local), p.f.OutWeights(local)
	for i, u := range adj {
		w := caps[i]
		if b < w {
			w = b
		}
		ctx.Send(u, w)
	}
}

// Aggregate keeps the widest offer (monotone max).
func (p *widest) Aggregate(cur, in float64) (float64, bool) {
	if in > cur {
		return in, true
	}
	return cur, false
}

func (p *widest) Equal(a, b float64) bool { return a == b }
func (p *widest) Delta(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d
}
func (p *widest) Size(float64) int                                     { return 8 }
func (p *widest) Output(ctx *argan.Ctx[float64], local uint32) float64 { return ctx.Get(local) }

// Priority explores the widest frontier first (the Dijkstra analogue).
func (p *widest) Priority(v float64) float64 { return -v }

func main() {
	// A backbone network with random link capacities.
	g := argan.PowerLaw(argan.GenConfig{
		N: 30_000, M: 240_000, Directed: true, Seed: 13, MaxW: 1000,
	})
	fmt.Printf("network: %v\n", g)
	env := argan.Env{Workers: 8}
	q := argan.Query{Source: 0}

	// The parallel run under GAP...
	values, m, err := argan.Run(g, env, env.DefaultConfig(), newWidest(), q)
	if err != nil {
		panic(err)
	}
	// ...must equal the sequential batch algorithm (§IV correctness).
	seq, err := argan.RunSequential(g, newWidest(), q)
	if err != nil {
		panic(err)
	}
	for v := range seq {
		if seq[v] != values[v] {
			panic(fmt.Sprintf("parallel run diverged at vertex %d: %v vs %v", v, values[v], seq[v]))
		}
	}

	reached, worst := 0, 1e18
	for v, b := range values {
		if v == 0 || b == 0 {
			continue
		}
		reached++
		if b < worst {
			worst = b
		}
	}
	fmt.Printf("bottleneck bandwidth known for %d vertices (narrowest: %.0f)\n", reached, worst)
	fmt.Printf("engine: response=%.0f  T_w=%.0f  updates=%d  (parallel == sequential ✓)\n",
		m.RespTime, m.TotalTw, m.Updates)
}
