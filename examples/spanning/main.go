// Spanning: minimum spanning forest with parallel Borůvka — each Borůvka
// round is one ACE query (the component-minimum fixpoint) with hooking at
// the coordinator, demonstrating how larger algorithms compose from ACE
// building blocks (the paper's Table III lists MST/Borůvka as Category II).
package main

import (
	"fmt"

	"argan"
)

func main() {
	// A utility network: a noisy grid with random cable costs.
	g := argan.Grid(120, 120, argan.GenConfig{Seed: 19, MaxW: 100})
	fmt.Printf("network: %v\n", g)

	env := argan.Env{Workers: 8}
	edges, total, rounds, err := argan.MST(g, env, env.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("minimum spanning forest: %d edges, total cost %.0f, %d Borůvka rounds\n",
		len(edges), total, rounds)
	fmt.Println("first selected cables:")
	for i := 0; i < 5 && i < len(edges); i++ {
		e := edges[i]
		fmt.Printf("  %d -- %d  cost %.0f\n", e.U, e.V, e.W)
	}
}
